// Unit tests for src/optimizer: cardinality estimation, cost model,
// plan building, and end-to-end spec->plan->execution consistency.
#include <memory>

#include "gtest/gtest.h"
#include "src/common/stats.h"
#include "src/engine/executor.h"
#include "src/optimizer/cardinality.h"
#include "src/optimizer/plan_builder.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = GenerateDatabase(TpchSchema(), 0.5, 1.0, 42);
    est_ = std::make_unique<CardinalityEstimator>(db_.get());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<CardinalityEstimator> est_;
};

TEST_F(OptimizerTest, RangeSelectivityRoughlyCorrectOnUniformKey) {
  // The primary key is sequential: [1, N/10] has selectivity 10%.
  const Table* o = db_->FindTable("orders");
  Predicate p{"o_orderkey", Predicate::Op::kLe, 0, o->row_count() / 10};
  EXPECT_NEAR(est_->PredicateSelectivity("orders", p), 0.1, 0.02);
}

TEST_F(OptimizerTest, EqualitySelectivityUsesDistinctCounts) {
  Predicate p{"o_orderstatus", Predicate::Op::kEq, 2, 2};
  const double sel = est_->PredicateSelectivity("orders", p);
  EXPECT_GT(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

TEST_F(OptimizerTest, ConjunctionAssumesIndependence) {
  Predicate a{"l_quantity", Predicate::Op::kLe, 0, 25};
  Predicate b{"l_discount", Predicate::Op::kLe, 0, 5};
  const double sa = est_->PredicateSelectivity("lineitem", a);
  const double sb = est_->PredicateSelectivity("lineitem", b);
  EXPECT_NEAR(est_->ConjunctionSelectivity("lineitem", {a, b}), sa * sb, 1e-12);
}

TEST_F(OptimizerTest, CorrelatedPredicatesUnderestimated) {
  // l_commitdate = l_shipdate + small offset; conjunctive ranges on both are
  // nearly redundant, so independence multiplies selectivities and
  // underestimates. This bias is intended (paper Tables 7-9 setting).
  Predicate a{"l_shipdate", Predicate::Op::kLe, 0, 1000};
  Predicate b{"l_commitdate", Predicate::Op::kLe, 0, 1030};
  const double est_rows = est_->ScanRows("lineitem", {a, b});
  const Table* li = db_->FindTable("lineitem");
  const int sc = li->FindColumn("l_shipdate");
  const int cc = li->FindColumn("l_commitdate");
  int64_t actual = 0;
  for (int64_t i = 0; i < li->row_count(); ++i) {
    actual += (li->column(static_cast<size_t>(sc)).data[static_cast<size_t>(i)] <= 1000 &&
               li->column(static_cast<size_t>(cc)).data[static_cast<size_t>(i)] <= 1030);
  }
  EXPECT_LT(est_rows, 0.8 * static_cast<double>(actual));
}

TEST_F(OptimizerTest, JoinRowsContainment) {
  // FK join: |L join R| = |L| * |R| / max(d1, d2).
  EXPECT_DOUBLE_EQ(CardinalityEstimator::JoinRows(1000, 100, 100, 100), 1000);
  EXPECT_DOUBLE_EQ(CardinalityEstimator::JoinRows(10, 10, 1, 1), 100);
}

TEST_F(OptimizerTest, GroupCountCappedByRows) {
  EXPECT_DOUBLE_EQ(CardinalityEstimator::GroupCount(50, {10, 10}), 50);
  EXPECT_DOUBLE_EQ(CardinalityEstimator::GroupCount(1000, {3, 4}), 12);
}

TEST_F(OptimizerTest, PlanBuilderSingleTableUsesSeekWhenSelective) {
  PlanBuilder builder(db_.get());
  QuerySpec q;
  q.tables.push_back(TableRef{
      "orders", {Predicate{"o_orderdate", Predicate::Op::kBetween, 100, 130}},
      {"o_orderkey", "o_orderdate"}});
  const Plan plan = builder.Build(q);
  EXPECT_EQ(plan.root->type, OpType::kIndexSeek);
}

TEST_F(OptimizerTest, PlanBuilderUnselectivePredicateUsesScan) {
  PlanBuilder builder(db_.get());
  QuerySpec q;
  q.tables.push_back(TableRef{
      "orders", {Predicate{"o_orderdate", Predicate::Op::kGe, 5, 0}},
      {"o_orderkey"}});
  const Plan plan = builder.Build(q);
  EXPECT_EQ(plan.root->type, OpType::kTableScan);
}

TEST_F(OptimizerTest, PlanBuilderAddsAggSortTop) {
  PlanBuilder builder(db_.get());
  QuerySpec q;
  q.tables.push_back(TableRef{"lineitem", {}, {"l_shipmode", "l_quantity"}});
  q.group_columns = {"lineitem.l_shipmode"};
  q.num_aggregates = 2;
  q.order_by = {"agg0"};
  q.limit = 5;
  const Plan plan = builder.Build(q);
  // Top(Sort(Agg(...)))
  EXPECT_EQ(plan.root->type, OpType::kTop);
  EXPECT_EQ(plan.root->child(0)->type, OpType::kSort);
  const OpType agg = plan.root->child(0)->child(0)->type;
  EXPECT_TRUE(agg == OpType::kHashAggregate || agg == OpType::kStreamAggregate);
}

TEST_F(OptimizerTest, EstimatesAnnotatedOnEveryNode) {
  PlanBuilder builder(db_.get());
  Rng rng(5);
  const QuerySpec q = MakeTpchQuery(1, &rng, db_.get());  // Q3: 3-way join
  const Plan plan = builder.Build(q);
  plan.root->Visit([](const PlanNode* n) {
    EXPECT_GT(n->est.rows_out, 0.0) << OpTypeName(n->type);
    EXPECT_GE(n->est.total_cost, 0.0);
  });
}

TEST_F(OptimizerTest, BuiltPlansExecuteForAllTemplates) {
  PlanBuilder builder(db_.get());
  Executor exec(db_.get(), 3);
  Rng rng(5);
  for (int t = 0; t < NumTpchTemplates(); ++t) {
    const QuerySpec q = MakeTpchQuery(t, &rng, db_.get());
    Plan plan = builder.Build(q);
    ASSERT_NO_THROW(exec.Execute(&plan)) << q.name;
    EXPECT_GT(plan.TotalActualCpu(), 0.0) << q.name;
    plan.root->Visit([&](const PlanNode* n) {
      EXPECT_TRUE(n->actual.executed) << q.name << " " << OpTypeName(n->type);
    });
  }
}

TEST_F(OptimizerTest, JoinOrderCoversAllTables) {
  PlanBuilder builder(db_.get());
  Rng rng(5);
  const QuerySpec q = MakeTpchQuery(3, &rng, db_.get());  // Q5: 6-way join
  const Plan plan = builder.Build(q);
  int scans = 0;
  plan.root->Visit([&](const PlanNode* n) {
    if (n->type == OpType::kTableScan || n->type == OpType::kIndexSeek) ++scans;
    if (n->type == OpType::kIndexNestedLoopJoin) ++scans;  // inner side access
  });
  EXPECT_GE(scans, 6);
}

TEST_F(OptimizerTest, ScanEstimatesCorrelateWithActuals) {
  // Histogram-based estimates at base-table access paths should track the
  // truth well (joins and aggregates higher up are allowed to drift — that
  // estimation error is part of what the paper's Tables 7-9 measure).
  PlanBuilder builder(db_.get());
  Executor exec(db_.get(), 3);
  Rng rng(17);
  std::vector<double> est_rows, act_rows;
  for (int t = 0; t < 2 * NumTpchTemplates(); ++t) {
    const QuerySpec q = MakeTpchQuery(t, &rng, db_.get());
    Plan plan = builder.Build(q);
    exec.Execute(&plan);
    plan.root->Visit([&](const PlanNode* n) {
      if (n->type != OpType::kTableScan && n->type != OpType::kIndexSeek) return;
      est_rows.push_back(std::log1p(n->est.rows_out));
      act_rows.push_back(std::log1p(static_cast<double>(n->actual.rows_out)));
    });
  }
  ASSERT_GT(est_rows.size(), 20u);
  EXPECT_GT(Correlation(est_rows, act_rows), 0.8);
}

TEST_F(OptimizerTest, CostModelCumulative) {
  PlanBuilder builder(db_.get());
  Rng rng(5);
  const QuerySpec q = MakeTpchQuery(1, &rng, db_.get());
  const Plan plan = builder.Build(q);
  // Root cumulative cost >= sum of local root cost and any child's total.
  const PlanNode* root = plan.root.get();
  for (const auto& c : root->children) {
    EXPECT_GE(root->est.total_cost, c->est.total_cost);
  }
}

}  // namespace
}  // namespace resest
