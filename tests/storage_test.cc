// Unit tests for src/storage: tables, indexes, histograms, data generation.
#include <set>

#include "gtest/gtest.h"
#include "src/storage/catalog.h"
#include "src/storage/histogram.h"
#include "src/storage/table.h"
#include "src/workload/schemas.h"

namespace resest {
namespace {

Table MakeSimpleTable(int64_t rows) {
  Table t("t");
  Column pk;
  pk.def = {"id", 8, rows, 0.0, false, ""};
  Column val;
  val.def = {"v", 8, 100, 0.0, true, ""};
  Rng rng(5);
  for (int64_t i = 1; i <= rows; ++i) {
    pk.data.push_back(i);
    val.data.push_back(rng.UniformInt(1, 100));
  }
  t.AddColumn(std::move(pk));
  t.AddColumn(std::move(val));
  t.BuildIndexes();
  return t;
}

TEST(TableTest, PageAccountingIsConsistent) {
  Table t = MakeSimpleTable(10000);
  EXPECT_EQ(t.row_width(), 16);
  EXPECT_EQ(t.rows_per_page(), kPageSize / 16);
  EXPECT_EQ(t.data_pages(), (10000 + t.rows_per_page() - 1) / t.rows_per_page());
  EXPECT_EQ(t.PageOfRow(0), 0);
  EXPECT_EQ(t.PageOfRow(t.rows_per_page()), 1);
}

TEST(TableTest, ClusteredIndexBuiltOnFirstColumn) {
  Table t = MakeSimpleTable(1000);
  const Index* pk = t.IndexOn(0);
  ASSERT_NE(pk, nullptr);
  EXPECT_TRUE(pk->clustered());
  const Index* sec = t.IndexOn(1);
  ASSERT_NE(sec, nullptr);
  EXPECT_FALSE(sec->clustered());
}

TEST(IndexTest, RangeLookupReturnsExactRows) {
  Table t = MakeSimpleTable(5000);
  const Index* idx = t.IndexOn(1);
  ASSERT_NE(idx, nullptr);
  const auto rows = idx->LookupRange(10, 20);
  // Verify against a full scan.
  int64_t expected = 0;
  for (Value v : t.column(1).data) expected += (v >= 10 && v <= 20);
  EXPECT_EQ(static_cast<int64_t>(rows.size()), expected);
  EXPECT_EQ(idx->CountRange(10, 20), expected);
  for (int64_t r : rows) {
    const Value v = t.column(1).data[static_cast<size_t>(r)];
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(IndexTest, DepthGrowsLogarithmically) {
  Table small = MakeSimpleTable(100);
  Table large = MakeSimpleTable(200000);
  const Index* si = small.IndexOn(0);
  const Index* li = large.IndexOn(0);
  ASSERT_NE(si, nullptr);
  ASSERT_NE(li, nullptr);
  EXPECT_GE(li->depth(), si->depth());
  EXPECT_LE(li->depth(), 4);  // 200k rows should not need a deep tree
}

TEST(IndexTest, EmptyRangeLookup) {
  Table t = MakeSimpleTable(100);
  const Index* idx = t.IndexOn(1);
  EXPECT_TRUE(idx->LookupRange(500, 600).empty());
  EXPECT_EQ(idx->CountRange(500, 600), 0);
}

TEST(HistogramTest, TotalsMatchData) {
  std::vector<Value> values;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) values.push_back(rng.UniformInt(1, 500));
  const Histogram h = Histogram::Build(values, 32);
  EXPECT_EQ(h.total_rows(), 10000);
  EXPECT_LE(static_cast<int>(h.buckets().size()), 33);
  EXPECT_NEAR(h.EstimateRange(h.min_value(), h.max_value()), 10000.0, 1.0);
}

TEST(HistogramTest, UniformRangeEstimateAccurate) {
  std::vector<Value> values;
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) values.push_back(rng.UniformInt(1, 1000));
  const Histogram h = Histogram::Build(values, 64);
  // Selectivity of [1, 100] should be ~10%.
  EXPECT_NEAR(h.SelectivityRange(1, 100), 0.1, 0.02);
}

TEST(HistogramTest, EqualityEstimatePositiveForPresentValue) {
  std::vector<Value> values(1000, 42);
  const Histogram h = Histogram::Build(values, 8);
  EXPECT_NEAR(h.EstimateEq(42), 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.EstimateEq(999), 0.0);
}

TEST(HistogramTest, SkewedDataEstimatesDegrade) {
  // The head value under heavy skew dominates; equality estimates for tail
  // values within the head bucket are biased — this is intended behaviour.
  std::vector<Value> values;
  Rng rng(11);
  ZipfSampler z(1000, 2.0);
  for (int i = 0; i < 50000; ++i) values.push_back(z.Sample(&rng));
  const Histogram h = Histogram::Build(values, 32);
  EXPECT_EQ(h.total_rows(), 50000);
  // The most frequent value's estimate is far below its true count only if
  // bucket boundaries merged it with others; with boundary snapping the head
  // value should still be estimated within 3x.
  int64_t true_head = 0;
  for (Value v : values) true_head += (v == 1);
  const double est = h.EstimateEq(1);
  EXPECT_GT(est, static_cast<double>(true_head) / 3.0);
}

TEST(HistogramTest, EmptyInput) {
  const Histogram h = Histogram::Build({}, 16);
  EXPECT_EQ(h.total_rows(), 0);
  EXPECT_DOUBLE_EQ(h.EstimateEq(1), 0.0);
}

TEST(GeneratorTest, TpchScalesWithScaleFactor) {
  auto db1 = GenerateDatabase(TpchSchema(), 1.0, 1.0, 42);
  auto db2 = GenerateDatabase(TpchSchema(), 2.0, 1.0, 42);
  const Table* l1 = db1->FindTable("lineitem");
  const Table* l2 = db2->FindTable("lineitem");
  ASSERT_NE(l1, nullptr);
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->row_count(), 2 * l1->row_count());
  // Fixed-size tables do not scale.
  EXPECT_EQ(db1->FindTable("nation")->row_count(),
            db2->FindTable("nation")->row_count());
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateDatabase(TpchSchema(), 1.0, 1.0, 99);
  auto b = GenerateDatabase(TpchSchema(), 1.0, 1.0, 99);
  const Table* ta = a->FindTable("orders");
  const Table* tb = b->FindTable("orders");
  ASSERT_EQ(ta->row_count(), tb->row_count());
  for (size_t c = 0; c < ta->column_count(); ++c) {
    EXPECT_EQ(ta->column(c).data, tb->column(c).data) << "column " << c;
  }
}

TEST(GeneratorTest, ForeignKeysReferenceParentDomain) {
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.0, 7);
  const Table* orders = db->FindTable("orders");
  const Table* customer = db->FindTable("customer");
  const int ck = orders->FindColumn("o_custkey");
  ASSERT_GE(ck, 0);
  for (Value v : orders->column(static_cast<size_t>(ck)).data) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, customer->row_count());
  }
}

TEST(GeneratorTest, SkewProducesRepeatedForeignKeys) {
  auto skewed = GenerateDatabase(TpchSchema(), 1.0, 2.0, 7);
  const Table* li = skewed->FindTable("lineitem");
  const int pk = li->FindColumn("l_partkey");
  std::set<Value> distinct(li->column(static_cast<size_t>(pk)).data.begin(),
                           li->column(static_cast<size_t>(pk)).data.end());
  // Under z=2 skew the distinct count is far below the domain.
  EXPECT_LT(static_cast<int64_t>(distinct.size()),
            skewed->FindTable("part")->row_count() / 2);
}

TEST(GeneratorTest, CorrelatedColumnsTrackBase) {
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.0, 7);
  const Table* li = db->FindTable("lineitem");
  const int ship = li->FindColumn("l_shipdate");
  const int commit = li->FindColumn("l_commitdate");
  ASSERT_GE(ship, 0);
  ASSERT_GE(commit, 0);
  for (size_t r = 0; r < 1000; ++r) {
    const Value s = li->column(static_cast<size_t>(ship)).data[r];
    const Value c = li->column(static_cast<size_t>(commit)).data[r];
    EXPECT_GT(c, s);
    EXPECT_LE(c, s + 30);
  }
}

TEST(GeneratorTest, StatisticsBuiltForAllColumns) {
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.0, 7);
  for (const auto& t : db->tables()) {
    for (size_t c = 0; c < t->column_count(); ++c) {
      EXPECT_NE(db->Stats(t->name(), static_cast<int>(c)), nullptr)
          << t->name() << " col " << c;
    }
  }
}

TEST(GeneratorTest, AllSchemasGenerate) {
  for (const auto& schema :
       {TpchSchema(), TpcdsSchema(), Real1Schema(), Real2Schema()}) {
    auto db = GenerateDatabase(schema, 0.25, 1.0, 3);
    EXPECT_EQ(db->tables().size(), schema.tables.size()) << schema.name;
    for (const auto& t : db->tables()) EXPECT_GT(t->row_count(), 0);
  }
}

}  // namespace
}  // namespace resest
