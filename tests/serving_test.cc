// Tests for src/serving: thread pool semantics, registry versioning and
// hot-swap under concurrent readers, and the estimation service — blocking
// and async submission — including the core contract that pooled batched
// results are bit-identical to the serial ResourceEstimator path.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/thread_pool.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count, i]() {
      count.fetch_add(1);
      return i;
    }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i);
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done]() { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 16);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done]() { done.fetch_add(1); });
    }
  }  // ~ThreadPool must run every queued task before joining.
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, LanesDrainInStrictPriorityOrderFifoWithinLane) {
  ThreadPool pool(1);
  // Park the only worker so every subsequent Submit queues; the drain order
  // after release is then exactly the scheduler's choice.
  std::promise<void> gate_entered;
  std::promise<void> gate_release;
  std::shared_future<void> release = gate_release.get_future().share();
  pool.Submit([&gate_entered, release]() {
    gate_entered.set_value();
    release.wait();
  });
  gate_entered.get_future().wait();

  std::mutex mu;
  std::vector<int> order;
  auto record = [&mu, &order](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  pool.Submit(TaskPriority::kBulk, [&record]() { record(100); });
  pool.Submit(TaskPriority::kNormal, [&record]() { record(10); });
  pool.Submit(TaskPriority::kUrgent, [&record]() { record(1); });
  pool.Submit(TaskPriority::kUrgent, [&record]() { record(2); });
  pool.Submit(TaskPriority::kBulk, [&record]() { record(101); });
  pool.Submit(TaskPriority::kNormal, [&record]() { record(11); });

  EXPECT_EQ(pool.QueueDepth(), 6u);
  EXPECT_EQ(pool.QueueDepth(TaskPriority::kUrgent), 2u);
  EXPECT_EQ(pool.QueueDepth(TaskPriority::kNormal), 2u);
  EXPECT_EQ(pool.QueueDepth(TaskPriority::kBulk), 2u);

  gate_release.set_value();
  pool.Wait();
  // All urgent before all normal before all bulk; submission order within
  // each lane.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 11, 100, 101}));
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, DefaultSubmitLandsOnTheNormalLane) {
  ThreadPool pool(1);
  std::promise<void> gate_entered;
  std::promise<void> gate_release;
  std::shared_future<void> release = gate_release.get_future().share();
  pool.Submit(TaskPriority::kUrgent, [&gate_entered, release]() {
    gate_entered.set_value();
    release.wait();
  });
  gate_entered.get_future().wait();
  auto f = pool.Submit([]() { return 3; });
  EXPECT_EQ(pool.QueueDepth(TaskPriority::kNormal), 1u);
  EXPECT_EQ(pool.QueueDepth(TaskPriority::kUrgent), 0u);
  gate_release.set_value();
  EXPECT_EQ(f.get(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsAllLanes) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      pool.Submit(TaskPriority::kBulk, [&done]() { done.fetch_add(1); });
      pool.Submit(TaskPriority::kUrgent, [&done]() { done.fetch_add(1); });
      pool.Submit(TaskPriority::kNormal, [&done]() { done.fetch_add(1); });
    }
  }  // ~ThreadPool must run every queued task on every lane before joining.
  EXPECT_EQ(done.load(), 24);
}

// ---------------------------------------------------------------------------
// Shared serving fixture: one small trained estimator + workload.
// ---------------------------------------------------------------------------

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 0.6, 1.0, 42).release();
    Rng rng(7);
    auto queries = GenerateTpchWorkload(70, &rng, db_);
    workload_ = new std::vector<ExecutedQuery>(RunWorkload(db_, queries));
    TrainOptions options;
    options.mart.num_trees = 40;  // small models keep the suite fast
    estimator_ = new ResourceEstimator(
        ResourceEstimator::Train(*workload_, options));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
    delete workload_;
    workload_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static std::shared_ptr<const ResourceEstimator> SharedEstimator() {
    // Non-owning alias: the fixture owns the estimator for the whole suite.
    return std::shared_ptr<const ResourceEstimator>(estimator_,
                                                    [](const auto*) {});
  }

  static std::vector<EstimateRequest> QueueRequests(Resource resource) {
    std::vector<EstimateRequest> requests;
    for (const auto& eq : *workload_) {
      requests.push_back({&eq.plan, eq.database, resource});
    }
    return requests;
  }

  static Database* db_;
  static std::vector<ExecutedQuery>* workload_;
  static ResourceEstimator* estimator_;
};

Database* ServingTest::db_ = nullptr;
std::vector<ExecutedQuery>* ServingTest::workload_ = nullptr;
ResourceEstimator* ServingTest::estimator_ = nullptr;

// ---------------------------------------------------------------------------
// ModelRegistry
// ---------------------------------------------------------------------------

TEST_F(ServingTest, RegistryPublishGetRoundTrip) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Get("m"));
  const uint64_t v1 = registry.Publish("m", SharedEstimator());
  EXPECT_GT(v1, 0u);
  ModelSnapshot snap = registry.Get("m");
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap.version, v1);
  EXPECT_EQ(snap.estimator.get(), estimator_);
}

TEST_F(ServingTest, RegistryVersioningAndRollback) {
  ModelRegistry registry;
  const uint64_t v1 = registry.Publish("m", SharedEstimator());
  const uint64_t v2 = registry.Publish("m", SharedEstimator());
  EXPECT_GT(v2, v1);
  EXPECT_EQ(registry.Get("m").version, v2);
  EXPECT_EQ(registry.Versions("m").size(), 2u);
  // Rollback to v1, then verify eviction keeps the active version pinned.
  ASSERT_TRUE(registry.Activate("m", v1));
  EXPECT_EQ(registry.Get("m").version, v1);
  EXPECT_FALSE(registry.Activate("m", 999999));
  registry.Remove("m");
  EXPECT_FALSE(registry.Get("m"));
}

TEST_F(ServingTest, RegistryEvictsOldVersionsButSnapshotsStayAlive) {
  ModelRegistry registry;
  registry.set_max_versions(2);
  auto v1_model = std::make_shared<const ResourceEstimator>(*estimator_);
  const uint64_t v1 = registry.Publish("m", v1_model);
  const ModelSnapshot held = registry.Get("m");  // in-flight reader of v1
  v1_model.reset();
  const uint64_t v2 = registry.Publish("m", SharedEstimator());
  const uint64_t v3 = registry.Publish("m", SharedEstimator());  // evicts v1
  EXPECT_FALSE(registry.GetVersion("m", v1));
  EXPECT_TRUE(registry.GetVersion("m", v2));
  EXPECT_EQ(registry.Get("m").version, v3);
  // The held snapshot outlives eviction: the estimator stays fully usable.
  const auto& eq = workload_->front();
  EXPECT_EQ(
      held.estimator->EstimateQuery(eq.plan, *eq.database, Resource::kCpu),
      estimator_->EstimateQuery(eq.plan, *eq.database, Resource::kCpu));
}

TEST_F(ServingTest, RegistrySerializedPublishRoundTrip) {
  ModelRegistry registry;
  const std::vector<uint8_t> bytes = estimator_->Serialize();
  const uint64_t v = registry.PublishSerialized("m", bytes);
  ASSERT_GT(v, 0u);
  // The deserialized model must reproduce the original's estimates exactly.
  const auto& eq = workload_->front();
  ModelSnapshot snap = registry.Get("m");
  EXPECT_EQ(
      snap.estimator->EstimateQuery(eq.plan, *eq.database, Resource::kCpu),
      estimator_->EstimateQuery(eq.plan, *eq.database, Resource::kCpu));
  // Corrupt input is rejected without disturbing the active version.
  std::vector<uint8_t> corrupt(bytes.begin(), bytes.begin() + 40);
  EXPECT_EQ(registry.PublishSerialized("m", corrupt), 0u);
  EXPECT_EQ(registry.Get("m").version, v);
}

TEST_F(ServingTest, RegistryHotSwapUnderConcurrentReaders) {
  ModelRegistry registry;
  registry.Publish("m", SharedEstimator());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  const auto& eq = workload_->front();
  const double expected =
      estimator_->EstimateQuery(eq.plan, *eq.database, Resource::kCpu);

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        ModelSnapshot snap = registry.Get("m");
        ASSERT_TRUE(snap);
        // Every retained snapshot must stay fully usable mid-swap.
        EXPECT_EQ(snap.estimator->EstimateQuery(eq.plan, *eq.database,
                                                Resource::kCpu),
                  expected);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer: publish new versions (triggering eviction) while readers spin.
  for (int i = 0; i < 50; ++i) {
    registry.Publish("m", SharedEstimator());
  }
  // Bounded wait: if a reader dies on an assertion, fail fast instead of
  // spinning until the ctest timeout.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (reads.load() < 200 && !::testing::Test::HasFailure() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GE(reads.load(), 200u);
  EXPECT_GE(registry.Versions("m").size(), 1u);
}

// ---------------------------------------------------------------------------
// EstimationService
// ---------------------------------------------------------------------------

TEST_F(ServingTest, BatchedResultsBitIdenticalToSerial) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  for (Resource resource : {Resource::kCpu, Resource::kIo}) {
    const auto requests = QueueRequests(resource);
    const auto results = service.EstimateBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      const double serial = estimator_->EstimateQuery(
          *requests[i].plan, *requests[i].database, resource);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(results[i].value, serial) << "request " << i;
    }
  }
}

TEST_F(ServingTest, ConcurrentCallersSmokeTest) {
  // N caller threads x M requests each, all against one shared service; every
  // result must equal the serial estimate (shared read path is totally const).
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  std::vector<double> serial(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator_->EstimateQuery(
        *requests[i].plan, *requests[i].database, Resource::kCpu);
  }

  constexpr int kCallers = 4;
  std::vector<std::thread> callers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t]() {
      for (int round = 0; round < 3; ++round) {
        if ((t + round) % 2 == 0) {
          const auto results = service.EstimateBatch(requests);
          for (size_t i = 0; i < results.size(); ++i) {
            if (!results[i].ok() || results[i].value != serial[i]) {
              mismatches.fetch_add(1);
            }
          }
        } else {
          for (size_t i = 0; i < requests.size(); ++i) {
            const auto r = service.Estimate(requests[i]);
            if (!r.ok() || r.value != serial[i]) mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kCallers * 3 * requests.size());
  EXPECT_EQ(stats.errors, 0u);
}

TEST_F(ServingTest, EmptyBatchReturnsEmpty) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(2);
  EstimationService service(&registry, &pool);
  EXPECT_TRUE(service.EstimateBatch({}).empty());
  EXPECT_EQ(service.stats().batches, 0u);
}

TEST_F(ServingTest, OversizedBatchRejectedWhole) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(2);
  ServiceOptions options;
  options.max_batch_size = 8;
  EstimationService service(&registry, &pool, options);

  std::vector<EstimateRequest> requests(9, QueueRequests(Resource::kCpu)[0]);
  const auto results = service.EstimateBatch(requests);
  ASSERT_EQ(results.size(), 9u);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, EstimateStatus::kBatchTooLarge);
  }
  EXPECT_EQ(service.stats().rejected_batches, 1u);
  EXPECT_EQ(service.stats().requests, 0u);
}

TEST_F(ServingTest, MissingModelAndInvalidRequest) {
  ModelRegistry registry;
  ThreadPool pool(2);
  EstimationService service(&registry, &pool);

  EstimateRequest req = QueueRequests(Resource::kCpu)[0];
  EXPECT_EQ(service.Estimate(req).status, EstimateStatus::kModelNotFound);

  registry.Publish("default", SharedEstimator());
  EstimateRequest null_plan = req;
  null_plan.plan = nullptr;
  EXPECT_EQ(service.Estimate(null_plan).status,
            EstimateStatus::kInvalidRequest);
  // A batch mixing valid and invalid requests fails only the invalid slots.
  const auto results = service.EstimateBatch({req, null_plan, req});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status, EstimateStatus::kInvalidRequest);
  EXPECT_TRUE(results[2].ok());
}

TEST_F(ServingTest, BatchServedFromSingleSnapshotDuringHotSwap) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  std::atomic<bool> stop{false};
  std::thread publisher([&]() {
    while (!stop.load()) registry.Publish("default", SharedEstimator());
  });
  for (int round = 0; round < 5; ++round) {
    const auto results = service.EstimateBatch(requests);
    ASSERT_FALSE(results.empty());
    const uint64_t version = results[0].model_version;
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.model_version, version);  // never split across versions
    }
  }
  stop.store(true);
  publisher.join();
}

// ---------------------------------------------------------------------------
// Async submission (SubmitBatch / SubmitEstimate)
// ---------------------------------------------------------------------------

TEST_F(ServingTest, SubmitBatchFutureBitIdenticalToSerial) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  auto future = service.SubmitBatch(requests);
  const auto results = future.get();
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value,
              estimator_->EstimateQuery(*requests[i].plan,
                                        *requests[i].database, Resource::kCpu))
        << "request " << i;
  }
}

TEST_F(ServingTest, NestedBlockingBatchFromPoolTaskDoesNotDeadlock) {
  // The old EstimateBatch parked the caller on futures its own pool had to
  // run, so calling it from a pool task deadlocked a saturated pool. The
  // completion-driven batch lets a blocking caller drain its own chunks:
  // even on a single-worker pool, the nested call below must finish.
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(1);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  auto outer = pool.Submit([&service, &requests]() {
    return service.EstimateBatch(requests);  // nested blocking call
  });
  ASSERT_EQ(outer.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "nested EstimateBatch deadlocked the pool";
  const auto results = outer.get();
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value,
              estimator_->EstimateQuery(*requests[i].plan,
                                        *requests[i].database, Resource::kCpu));
  }
}

TEST_F(ServingTest, NestedSubmitBatchFromPoolTaskCompletes) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(2);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kIo);
  // A pool task composes with the service without a second pool: it submits
  // a nested batch and returns the future instead of blocking.
  auto nested = pool.Submit([&service, &requests]() {
    return service.SubmitBatch(requests);
  });
  auto results_future = nested.get();
  ASSERT_EQ(results_future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  const auto results = results_future.get();
  ASSERT_EQ(results.size(), requests.size());
  for (const auto& r : results) EXPECT_TRUE(r.ok());
}

TEST_F(ServingTest, BatchCallbackDeliveredExactlyOnce) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);

  const auto requests = QueueRequests(Resource::kCpu);
  std::atomic<int> calls{0};
  std::atomic<size_t> delivered_size{0};
  {
    EstimationService service(&registry, &pool);
    service.SubmitBatch(requests,
                        [&](std::vector<EstimateResult> results) {
                          calls.fetch_add(1);
                          delivered_size.store(results.size());
                        });
    // ~EstimationService waits for the in-flight batch: the callback has
    // run exactly once by the time the destructor returns.
  }
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(delivered_size.load(), requests.size());
}

TEST_F(ServingTest, DegenerateBatchesStillDeliverExactlyOnce) {
  ModelRegistry registry;  // deliberately empty: no model published
  ThreadPool pool(2);
  ServiceOptions options;
  options.max_batch_size = 4;
  EstimationService service(&registry, &pool, options);

  int empty_calls = 0;
  service.SubmitBatch({}, [&](std::vector<EstimateResult> results) {
    ++empty_calls;
    EXPECT_TRUE(results.empty());
  });
  EXPECT_EQ(empty_calls, 1);

  const EstimateRequest req = QueueRequests(Resource::kCpu)[0];
  int oversized_calls = 0;
  service.SubmitBatch(std::vector<EstimateRequest>(5, req),
                      [&](std::vector<EstimateResult> results) {
                        ++oversized_calls;
                        ASSERT_EQ(results.size(), 5u);
                        for (const auto& r : results) {
                          EXPECT_EQ(r.status, EstimateStatus::kBatchTooLarge);
                        }
                      });
  EXPECT_EQ(oversized_calls, 1);

  auto missing_model = service.SubmitBatch({req, req});
  const auto results = missing_model.get();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, EstimateStatus::kModelNotFound);
  }
}

TEST_F(ServingTest, DrainOnDestroyCompletesInFlightBatches) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);

  const auto requests = QueueRequests(Resource::kCpu);
  std::vector<std::future<std::vector<EstimateResult>>> futures;
  {
    EstimationService service(&registry, &pool);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(service.SubmitBatch(requests));
    }
  }  // destructor must wait: every future is ready afterwards
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const auto results = f.get();
    ASSERT_EQ(results.size(), requests.size());
    for (const auto& r : results) EXPECT_TRUE(r.ok());
  }
}

TEST_F(ServingTest, SubmitEstimateFutureAndCallback) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(2);
  EstimationService service(&registry, &pool);

  const EstimateRequest req = QueueRequests(Resource::kCpu)[0];
  const double expected =
      estimator_->EstimateQuery(*req.plan, *req.database, Resource::kCpu);

  auto future = service.SubmitEstimate(req);
  const EstimateResult via_future = future.get();
  ASSERT_TRUE(via_future.ok());
  EXPECT_EQ(via_future.value, expected);

  std::promise<EstimateResult> delivered;
  service.SubmitEstimate(req, [&delivered](EstimateResult r) {
    delivered.set_value(r);
  });
  const EstimateResult via_callback = delivered.get_future().get();
  ASSERT_TRUE(via_callback.ok());
  EXPECT_EQ(via_callback.value, expected);
}

TEST_F(ServingTest, ConcurrentMixedSubmittersAgreeWithSerial) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  std::vector<double> serial(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator_->EstimateQuery(
        *requests[i].plan, *requests[i].database, Resource::kCpu);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t]() {
      for (int round = 0; round < 2; ++round) {
        std::vector<EstimateResult> results;
        if ((t + round) % 2 == 0) {
          results = service.SubmitBatch(requests).get();
        } else {
          results = service.EstimateBatch(requests);
        }
        for (size_t i = 0; i < results.size(); ++i) {
          if (!results[i].ok() || results[i].value != serial[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Priority lanes and deadlines through the batch pipeline
// ---------------------------------------------------------------------------

TEST_F(ServingTest, PrioritizedBatchesBitIdenticalToSerial) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  SubmitOptions urgent;
  urgent.priority = TaskPriority::kUrgent;
  SubmitOptions bulk_with_deadline;
  bulk_with_deadline.priority = TaskPriority::kBulk;
  bulk_with_deadline.deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(5);
  for (const SubmitOptions& opts : {urgent, bulk_with_deadline}) {
    const auto results = service.EstimateBatch(requests, opts);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(results[i].value,
                estimator_->EstimateQuery(*requests[i].plan,
                                          *requests[i].database,
                                          Resource::kCpu))
          << "request " << i;
    }
  }
  EXPECT_EQ(service.stats().deadline_expired, 0u);
}

TEST_F(ServingTest, UrgentBatchOvertakesQueuedBulkBatch) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(1);
  EstimationService service(&registry, &pool);

  // Park the only worker so both batches are queued before anything runs.
  std::promise<void> gate_entered;
  std::promise<void> gate_release;
  std::shared_future<void> release = gate_release.get_future().share();
  pool.Submit([&gate_entered, release]() {
    gate_entered.set_value();
    release.wait();
  });
  gate_entered.get_future().wait();

  std::mutex mu;
  std::vector<const char*> completion_order;
  std::promise<void> bulk_done, urgent_done;
  const auto requests = QueueRequests(Resource::kCpu);
  SubmitOptions bulk;
  bulk.priority = TaskPriority::kBulk;
  service.SubmitBatch(requests,
                      [&](std::vector<EstimateResult>) {
                        std::lock_guard<std::mutex> lock(mu);
                        completion_order.push_back("bulk");
                        bulk_done.set_value();
                      },
                      bulk);
  SubmitOptions urgent;
  urgent.priority = TaskPriority::kUrgent;
  service.SubmitBatch(requests,
                      [&](std::vector<EstimateResult>) {
                        std::lock_guard<std::mutex> lock(mu);
                        completion_order.push_back("urgent");
                        urgent_done.set_value();
                      },
                      urgent);

  gate_release.set_value();
  urgent_done.get_future().wait();
  bulk_done.get_future().wait();
  // The urgent batch was submitted second but must complete first: the
  // worker serves the urgent pool lane and the scheduler's urgent batch
  // lane before touching bulk work.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_STREQ(completion_order[0], "urgent");
  EXPECT_STREQ(completion_order[1], "bulk");
}

TEST_F(ServingTest, AlreadyExpiredBatchReturnsDeadlineExceededUnexecuted) {
  ModelRegistry registry;
  const uint64_t version = registry.Publish("default", SharedEstimator());
  ThreadPool pool(2);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  SubmitOptions opts;
  opts.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto results = service.EstimateBatch(requests, opts);
  ASSERT_EQ(results.size(), requests.size());
  for (const auto& r : results) {
    EXPECT_EQ(r.status, EstimateStatus::kDeadlineExceeded);
    // Same version stamp as a per-chunk expiry: which model *would* have
    // served the request, even though nothing executed.
    EXPECT_EQ(r.model_version, version);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);  // well-formed, accepted, then expired
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.deadline_expired, requests.size());
  // "Without executing" is observable: no estimation ever touched the cache.
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.ForPriority(TaskPriority::kNormal).expired, requests.size());
}

TEST_F(ServingTest, DeadlineExpiresUnstartedChunksButStartedChunksFinish) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(1);

  // Two requests, one-request chunks, one worker: exactly one helper claims
  // chunk 0 then chunk 1 in order. The hook parks the helper between the
  // deadline check and the execution of chunk 0, the test lets the deadline
  // pass, and chunk 1's claim must then expire while chunk 0 — already
  // started — still completes with its normal value.
  std::promise<void> first_chunk_claimed;
  std::promise<void> resume_first_chunk;
  std::shared_future<void> resume = resume_first_chunk.get_future().share();
  std::atomic<int> claims{0};
  std::mutex mu;
  std::vector<bool> expired_flags;
  ServiceOptions options;
  options.chunk_size = 1;
  options.chunk_claim_hook = [&](TaskPriority, bool expired) {
    {
      std::lock_guard<std::mutex> lock(mu);
      expired_flags.push_back(expired);
    }
    if (claims.fetch_add(1) == 0) {
      first_chunk_claimed.set_value();
      resume.wait();
    }
  };
  EstimationService service(&registry, &pool, options);

  const auto all = QueueRequests(Resource::kCpu);
  const std::vector<EstimateRequest> requests(all.begin(), all.begin() + 2);
  SubmitOptions opts;
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(1);
  auto future = service.SubmitBatch(requests, opts);

  first_chunk_claimed.get_future().wait();
  std::this_thread::sleep_until(opts.deadline + std::chrono::milliseconds(100));
  resume_first_chunk.set_value();

  const auto results = future.get();
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok()) << EstimateStatusName(results[0].status);
  EXPECT_EQ(results[0].value,
            estimator_->EstimateQuery(*requests[0].plan, *requests[0].database,
                                      Resource::kCpu));
  EXPECT_EQ(results[1].status, EstimateStatus::kDeadlineExceeded);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(expired_flags.size(), 2u);
    EXPECT_FALSE(expired_flags[0]);
    EXPECT_TRUE(expired_flags[1]);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST_F(ServingTest, DeadlineStatusPropagatesThroughFutureAndCallback) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(2);
  EstimationService service(&registry, &pool);

  const EstimateRequest req = QueueRequests(Resource::kCpu)[0];
  SubmitOptions expired;
  expired.priority = TaskPriority::kUrgent;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);

  EXPECT_EQ(service.SubmitEstimate(req, expired).get().status,
            EstimateStatus::kDeadlineExceeded);

  std::promise<EstimateResult> delivered;
  service.SubmitEstimate(
      req, [&delivered](EstimateResult r) { delivered.set_value(r); },
      expired);
  EXPECT_EQ(delivered.get_future().get().status,
            EstimateStatus::kDeadlineExceeded);

  std::promise<std::vector<EstimateResult>> batch_delivered;
  service.SubmitBatch({req, req},
                      [&batch_delivered](std::vector<EstimateResult> results) {
                        batch_delivered.set_value(std::move(results));
                      },
                      expired);
  const auto batch_results = batch_delivered.get_future().get();
  ASSERT_EQ(batch_results.size(), 2u);
  for (const auto& r : batch_results) {
    EXPECT_EQ(r.status, EstimateStatus::kDeadlineExceeded);
  }
  EXPECT_EQ(service.stats().ForPriority(TaskPriority::kUrgent).expired, 4u);
}

TEST_F(ServingTest, PerPriorityStatsTrackBatchesRequestsAndLatency) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  SubmitOptions urgent;
  urgent.priority = TaskPriority::kUrgent;
  service.EstimateBatch(requests, urgent);
  SubmitOptions bulk;
  bulk.priority = TaskPriority::kBulk;
  service.EstimateBatch(requests, bulk);
  service.EstimateBatch(requests, bulk);

  const ServiceStats stats = service.stats();
  const PriorityLaneStats& u = stats.ForPriority(TaskPriority::kUrgent);
  EXPECT_EQ(u.batches, 1u);
  EXPECT_EQ(u.requests, requests.size());
  EXPECT_EQ(u.expired, 0u);
  EXPECT_GT(u.total_latency_ms, 0.0);
  EXPECT_GE(u.max_latency_ms, u.MeanLatencyMs());
  uint64_t histogram_total = 0;
  for (uint64_t count : u.latency_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, 1u);
  EXPECT_GT(u.ApproxLatencyPercentileMs(0.99), 0.0);

  const PriorityLaneStats& b = stats.ForPriority(TaskPriority::kBulk);
  EXPECT_EQ(b.batches, 2u);
  EXPECT_EQ(b.requests, 2 * requests.size());

  const PriorityLaneStats& n = stats.ForPriority(TaskPriority::kNormal);
  EXPECT_EQ(n.batches, 0u);
  EXPECT_EQ(n.requests, 0u);
  EXPECT_EQ(n.ApproxLatencyPercentileMs(0.99), 0.0);

  // The aggregate counters are the lane totals.
  EXPECT_EQ(stats.requests, u.requests + b.requests);
  EXPECT_EQ(stats.batches, u.batches + b.batches);
}

// ---------------------------------------------------------------------------
// Parallel training and the file-backed registry
// ---------------------------------------------------------------------------

TEST_F(ServingTest, ParallelTrainingBitIdenticalToSerial) {
  TrainOptions options;
  options.mart.num_trees = 15;  // identity is what matters, keep it cheap
  const ResourceEstimator serial =
      ResourceEstimator::Train(*workload_, options);
  options.train_threads = 4;
  const ResourceEstimator parallel =
      ResourceEstimator::Train(*workload_, options);
  // Byte-equal serialized stores: same models, same splits, same leaves.
  EXPECT_EQ(serial.Serialize(), parallel.Serialize());
}

TEST_F(ServingTest, FileBackedRegistryRestartRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "resest_registry_test";
  std::filesystem::remove_all(dir);

  ModelRegistry registry;
  registry.Publish("m", SharedEstimator());
  ASSERT_TRUE(registry.SaveActive("m", dir.string()));
  EXPECT_FALSE(registry.SaveActive("absent", dir.string()));

  // "Restart": a fresh registry loads the persisted store, no retraining.
  ModelRegistry restarted;
  const uint64_t v =
      restarted.PublishFromFile("m", (dir / "m.model").string());
  ASSERT_GT(v, 0u);
  EXPECT_EQ(restarted.PublishFromFile("m", (dir / "missing.model").string()),
            0u);
  EXPECT_EQ(restarted.Get("m").version, v);

  const auto& eq = workload_->front();
  EXPECT_EQ(restarted.Get("m").estimator->EstimateQuery(eq.plan, *eq.database,
                                                        Resource::kCpu),
            estimator_->EstimateQuery(eq.plan, *eq.database, Resource::kCpu));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Delta publish: incremental refits hot-swapped with scoped invalidation
// ---------------------------------------------------------------------------

/// Unique (bitwise) feature vectors of one operator type across a workload
/// — the number of distinct cache keys that operator contributes per
/// resource.
size_t CountUniqueOperatorKeys(const std::vector<ExecutedQuery>& workload,
                               OpType op, FeatureMode mode) {
  std::vector<FeatureVector> unique;
  for (const auto& eq : workload) {
    VisitPlanOperators(
        eq.plan, [&](const PlanNode& node, const PlanNode* parent) {
          if (node.type != op) return;
          const FeatureVector v =
              ExtractFeatures(node, parent, *eq.database, mode);
          for (const auto& u : unique) {
            if (FeatureVectorHashEqual(u, v)) return;
          }
          unique.push_back(v);
        });
  }
  return unique.size();
}

TEST_F(ServingTest, DeltaPublishPreservesUntouchedEstimatesAndCacheEntries) {
  ModelRegistry registry;
  ThreadPool pool(4);
  TrainOptions options;
  options.mart.num_trees = 15;
  RefitPolicy policy;
  policy.min_new_rows = 8;
  policy.drift_threshold = 0.0;
  IncrementalTrainer trainer(options, policy, &pool);
  const auto base = trainer.SeedAndTrain(*workload_);
  const uint64_t v1 = trainer.PublishBaseline(&registry, "default");
  ASSERT_GT(v1, 0u);
  // The refit target must have a trained model, or there is nothing to
  // swap (TPC-H workloads sort, so this holds by construction).
  ASSERT_NE(base->ModelsFor(OpType::kSort, Resource::kCpu), nullptr);

  EstimationService service(&registry, &pool);
  const auto cpu_requests = QueueRequests(Resource::kCpu);
  const auto io_requests = QueueRequests(Resource::kIo);
  const auto cpu_before = service.EstimateBatch(cpu_requests);
  const auto io_before = service.EstimateBatch(io_requests);
  // Warm pass: every key is now cached.
  service.EstimateBatch(cpu_requests);
  service.EstimateBatch(io_requests);

  // Drifted sort feedback: only (kSort, kCpu) crosses the policy.
  {
    std::vector<std::pair<FeatureVector, double>> sort_rows;
    for (const auto& w : *workload_) {
      VisitPlanOperators(
          w.plan, [&](const PlanNode& node, const PlanNode* parent) {
            if (node.type == OpType::kSort) {
              sort_rows.emplace_back(
                  ExtractFeatures(node, parent, *w.database, base->mode()),
                  node.actual.cpu);
            }
          });
    }
    ASSERT_FALSE(sort_rows.empty());
    for (size_t i = 0; i < policy.min_new_rows; ++i) {
      const auto& [row, cpu] = sort_rows[i % sort_rows.size()];
      trainer.Append(OpType::kSort, Resource::kCpu, row, cpu * 1.5);
    }
  }
  const auto delta = trainer.RefitAndPublish(&registry, "default", &service);
  ASSERT_TRUE(delta);
  ASSERT_EQ(delta.refitted,
            (std::vector<ModelSlotId>{{OpType::kSort, Resource::kCpu}}));
  EXPECT_GT(delta.version, v1);

  // The delta shares every untouched model set with its predecessor by
  // pointer; only the refitted slot was replaced.
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      const OpType o = static_cast<OpType>(op);
      const Resource res = static_cast<Resource>(r);
      if (o == OpType::kSort && res == Resource::kCpu) {
        EXPECT_NE(delta.estimator->ModelsFor(o, res), base->ModelsFor(o, res));
      } else {
        EXPECT_EQ(delta.estimator->ModelsFor(o, res), base->ModelsFor(o, res))
            << OpTypeName(o) << "/" << ResourceName(res);
      }
    }
  }

  // Untouched resource across the swap: every estimate bit-identical, and
  // served entirely from surviving cache entries — zero new misses, the hit
  // counter alone grows.
  const ServiceStats pre_io = service.stats();
  const auto io_after = service.EstimateBatch(io_requests);
  ASSERT_EQ(io_after.size(), io_before.size());
  for (size_t i = 0; i < io_after.size(); ++i) {
    ASSERT_TRUE(io_after[i].ok());
    EXPECT_EQ(io_after[i].model_version, delta.version);
    EXPECT_EQ(io_after[i].value, io_before[i].value) << "io request " << i;
  }
  const ServiceStats post_io = service.stats();
  EXPECT_EQ(post_io.cache_misses, pre_io.cache_misses);
  EXPECT_GT(post_io.cache_hits, pre_io.cache_hits);

  // CPU pass, serially (Estimate() bypasses chunk parallelism, so the
  // miss accounting is exact): refitted sort keys miss exactly once, every
  // other operator's entries still hit.
  const size_t unique_sort_keys =
      CountUniqueOperatorKeys(*workload_, OpType::kSort, base->mode());
  ASSERT_GT(unique_sort_keys, 0u);
  const ServiceStats pre_cpu = service.stats();
  std::vector<EstimateResult> cpu_after;
  for (const auto& req : cpu_requests) {
    cpu_after.push_back(service.Estimate(req));
  }
  const ServiceStats post_cpu = service.stats();
  EXPECT_EQ(post_cpu.cache_misses - pre_cpu.cache_misses, unique_sort_keys);

  for (const auto& req : cpu_requests) (void)service.Estimate(req);
  EXPECT_EQ(service.stats().cache_misses, post_cpu.cache_misses)
      << "refitted-operator entries must miss exactly once";

  // Plans without a sort operator are bit-identical across the swap; all
  // plans match the delta estimator's direct (uncached) answer.
  for (size_t i = 0; i < cpu_requests.size(); ++i) {
    ASSERT_TRUE(cpu_after[i].ok());
    bool has_sort = false;
    (*workload_)[i].plan.root->Visit([&](const PlanNode* n) {
      if (n->type == OpType::kSort) has_sort = true;
    });
    if (!has_sort) {
      EXPECT_EQ(cpu_after[i].value, cpu_before[i].value) << "request " << i;
    }
    EXPECT_EQ(cpu_after[i].value,
              delta.estimator->EstimateQuery(*cpu_requests[i].plan,
                                             *cpu_requests[i].database,
                                             Resource::kCpu))
        << "request " << i;
  }
}

TEST_F(ServingTest, ScopedInvalidationReflectsInCacheShardStats) {
  // Regression for the whole-cache-drop on hot-swap: a delta publish must
  // leave the untouched operators' entries resident (per-shard entry counts
  // prove it) and account the dropped ones as `invalidated`, not LRU
  // evictions.
  ModelRegistry registry;
  ThreadPool pool(2);
  TrainOptions options;
  options.mart.num_trees = 12;
  RefitPolicy policy;
  policy.min_new_rows = 4;
  policy.drift_threshold = 0.0;
  IncrementalTrainer trainer(options, policy, &pool);
  const auto base = trainer.SeedAndTrain(*workload_);
  trainer.PublishBaseline(&registry, "default");
  ASSERT_NE(base->ModelsFor(OpType::kSort, Resource::kCpu), nullptr);

  EstimationService service(&registry, &pool);
  service.EstimateBatch(QueueRequests(Resource::kCpu));
  service.EstimateBatch(QueueRequests(Resource::kIo));
  const EstimateCacheStats warm = service.cache_stats();
  ASSERT_GT(warm.entries, 0u);
  EXPECT_EQ(warm.invalidated, 0u);

  FeatureVector row{};
  row.fill(3.0);
  for (size_t i = 0; i < policy.min_new_rows; ++i) {
    row[0] = static_cast<double>(i);
    trainer.Append(OpType::kSort, Resource::kCpu, row, 9.0);
  }
  const auto delta = trainer.RefitAndPublish(&registry, "default", &service);
  ASSERT_TRUE(delta);

  const size_t unique_sort_keys =
      CountUniqueOperatorKeys(*workload_, OpType::kSort, base->mode());
  const EstimateCacheStats swapped = service.cache_stats();
  // Only the refitted slot's entries were dropped — and they are accounted
  // as scoped invalidations, not LRU evictions.
  EXPECT_EQ(swapped.entries, warm.entries - unique_sort_keys);
  EXPECT_EQ(swapped.invalidated, unique_sort_keys);
  EXPECT_EQ(swapped.evictions, warm.evictions);
  uint64_t shard_invalidated = 0;
  size_t shard_entries = 0;
  for (const EstimateCacheShardStats& shard : swapped.shards) {
    shard_invalidated += shard.invalidated;
    shard_entries += shard.entries;
  }
  EXPECT_EQ(shard_invalidated, swapped.invalidated);
  EXPECT_EQ(shard_entries, swapped.entries);
}

TEST_F(ServingTest, TrafficRacingRefitServesOneOfTheTwoPublishedVersions) {
  // Continuous SubmitEstimate traffic racing RefitAffected() + hot-swap on
  // the shared pool (the refit rides kBulk under the serving lanes): every
  // response must be bit-identical to one of the two published versions —
  // no torn reads, no half-swapped models, cache hits included.
  ModelRegistry registry;
  ThreadPool pool(4);
  TrainOptions options;
  options.mart.num_trees = 12;
  RefitPolicy policy;
  policy.min_new_rows = 1;
  policy.drift_threshold = 0.0;
  IncrementalTrainer trainer(options, policy, &pool);
  const auto base = trainer.SeedAndTrain(*workload_);
  const uint64_t v1 = trainer.PublishBaseline(&registry, "default");
  ASSERT_GT(v1, 0u);
  EstimationService service(&registry, &pool);

  const auto requests = QueueRequests(Resource::kCpu);
  std::vector<double> serial_v1(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    serial_v1[i] = base->EstimateQuery(*requests[i].plan,
                                       *requests[i].database, Resource::kCpu);
  }

  // Drifted feedback so the refit touches at least one slot.
  FeatureVector row{};
  row.fill(2.0);
  for (int i = 0; i < 4; ++i) {
    row[0] = static_cast<double>(i);
    trainer.Append(OpType::kSort, Resource::kCpu, row, 7.0 + i);
  }

  struct Observation {
    size_t idx;
    uint64_t version;
    double value;
    EstimateStatus status;
  };
  std::atomic<bool> stop{false};
  std::mutex obs_mu;
  std::vector<Observation> observations;
  std::vector<std::thread> traffic;
  for (int t = 0; t < 3; ++t) {
    traffic.emplace_back([&, t]() {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t idx = i++ % requests.size();
        const EstimateResult r = service.SubmitEstimate(requests[idx]).get();
        std::lock_guard<std::mutex> lock(obs_mu);
        observations.push_back({idx, r.model_version, r.value, r.status});
      }
    });
  }

  const auto delta = trainer.RefitAndPublish(&registry, "default", &service);
  ASSERT_TRUE(delta);
  const uint64_t v2 = delta.version;
  // Let some traffic observe the new version before stopping.
  for (int i = 0; i < 20; ++i) {
    (void)service.SubmitEstimate(requests[static_cast<size_t>(i) %
                                          requests.size()])
        .get();
  }
  stop.store(true);
  for (auto& t : traffic) t.join();

  std::vector<double> serial_v2(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    serial_v2[i] = delta.estimator->EstimateQuery(
        *requests[i].plan, *requests[i].database, Resource::kCpu);
  }
  ASSERT_FALSE(observations.empty());
  for (const Observation& obs : observations) {
    ASSERT_EQ(obs.status, EstimateStatus::kOk);
    if (obs.version == v1) {
      EXPECT_EQ(obs.value, serial_v1[obs.idx]) << "request " << obs.idx;
    } else {
      ASSERT_EQ(obs.version, v2) << "response from an unpublished version";
      EXPECT_EQ(obs.value, serial_v2[obs.idx]) << "request " << obs.idx;
    }
  }
  // After the swap settles, everything serves from the delta.
  const EstimateResult settled = service.Estimate(requests[0]);
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled.model_version, v2);
  EXPECT_EQ(settled.value, serial_v2[0]);
}

TEST_F(ServingTest, PipelineEstimatesMatchDirectCall) {
  ModelRegistry registry;
  registry.Publish("default", SharedEstimator());
  ThreadPool pool(2);
  EstimationService service(&registry, &pool);

  const auto& eq = workload_->front();
  const EstimateRequest req{&eq.plan, eq.database, Resource::kCpu};
  const auto via_service = service.EstimatePipelines(req);
  const auto direct =
      estimator_->EstimatePipelines(eq.plan, *eq.database, Resource::kCpu);
  ASSERT_EQ(via_service.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_service[i], direct[i]);
  }
}

}  // namespace
}  // namespace resest
