// Unit tests for src/engine: operator correctness and resource accounting.
#include <memory>

#include "gtest/gtest.h"
#include "src/common/stats.h"
#include "src/engine/cost_constants.h"
#include "src/engine/executor.h"
#include "src/engine/plan.h"
#include "src/storage/catalog.h"
#include "src/workload/schemas.h"

namespace resest {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = GenerateDatabase(TpchSchema(), 0.5, 1.0, 42);
    exec_ = std::make_unique<Executor>(db_.get(), 7);
  }

  static std::unique_ptr<PlanNode> Scan(
      const std::string& table, std::vector<Predicate> preds = {},
      std::vector<std::string> cols = {}) {
    auto n = std::make_unique<PlanNode>();
    n->type = OpType::kTableScan;
    n->table = table;
    n->predicates = std::move(preds);
    n->output_columns = std::move(cols);
    return n;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(EngineTest, TableScanReturnsAllRowsWithoutPredicates) {
  auto scan = Scan("orders");
  const Relation r = exec_->ExecuteNode(scan.get());
  EXPECT_EQ(r.rows(), db_->FindTable("orders")->row_count());
  EXPECT_EQ(scan->actual.rows_out, r.rows());
  EXPECT_EQ(scan->actual.logical_io, db_->FindTable("orders")->data_pages());
  EXPECT_GT(scan->actual.cpu, 0.0);
  EXPECT_TRUE(scan->actual.executed);
}

TEST_F(EngineTest, TableScanAppliesPredicates) {
  auto scan = Scan("lineitem",
                   {Predicate{"l_quantity", Predicate::Op::kLe, 0, 10}});
  const Relation r = exec_->ExecuteNode(scan.get());
  const Table* li = db_->FindTable("lineitem");
  int64_t expected = 0;
  const int qcol = li->FindColumn("l_quantity");
  for (Value v : li->column(static_cast<size_t>(qcol)).data) expected += (v <= 10);
  EXPECT_EQ(r.rows(), expected);
}

TEST_F(EngineTest, TableScanProjectionControlsWidth) {
  auto narrow = Scan("lineitem", {}, {"l_quantity"});
  auto wide = Scan("lineitem", {}, {});
  const Relation rn = exec_->ExecuteNode(narrow.get());
  const Relation rw = exec_->ExecuteNode(wide.get());
  EXPECT_LT(rn.row_width(), rw.row_width());
  EXPECT_EQ(rn.rows(), rw.rows());
  EXPECT_LT(narrow->actual.bytes_out, wide->actual.bytes_out);
}

TEST_F(EngineTest, IndexSeekMatchesScanSemantics) {
  // A selective range: unselective seeks through a secondary index would pay
  // one bookmark lookup per match and legitimately exceed scan I/O.
  const Predicate range{"o_orderdate", Predicate::Op::kBetween, 100, 110};
  auto scan = Scan("orders", {range});
  auto seek = std::make_unique<PlanNode>();
  seek->type = OpType::kIndexSeek;
  seek->table = "orders";
  seek->seek_column = "o_orderdate";
  seek->predicates = {range};
  const Relation rs = exec_->ExecuteNode(scan.get());
  const Relation rk = exec_->ExecuteNode(seek.get());
  EXPECT_EQ(rs.rows(), rk.rows());
  // The seek should do far less I/O than the scan for a selective range.
  EXPECT_LT(seek->actual.logical_io, scan->actual.logical_io);
}

TEST_F(EngineTest, IndexSeekResidualPredicate) {
  auto seek = std::make_unique<PlanNode>();
  seek->type = OpType::kIndexSeek;
  seek->table = "orders";
  seek->seek_column = "o_orderdate";
  seek->predicates = {Predicate{"o_orderdate", Predicate::Op::kBetween, 100, 400},
                      Predicate{"o_orderstatus", Predicate::Op::kEq, 1, 1}};
  const Relation r = exec_->ExecuteNode(seek.get());
  const Table* o = db_->FindTable("orders");
  const int dcol = o->FindColumn("o_orderdate");
  const int scol = o->FindColumn("o_orderstatus");
  int64_t expected = 0;
  for (int64_t i = 0; i < o->row_count(); ++i) {
    const Value d = o->column(static_cast<size_t>(dcol)).data[static_cast<size_t>(i)];
    const Value s = o->column(static_cast<size_t>(scol)).data[static_cast<size_t>(i)];
    expected += (d >= 100 && d <= 400 && s == 1);
  }
  EXPECT_EQ(r.rows(), expected);
}

TEST_F(EngineTest, FilterReducesRows) {
  auto filter = std::make_unique<PlanNode>();
  filter->type = OpType::kFilter;
  filter->predicates = {Predicate{"l_quantity", Predicate::Op::kLe, 0, 25}};
  filter->children.push_back(Scan("lineitem"));
  const Relation r = exec_->ExecuteNode(filter.get());
  EXPECT_GT(r.rows(), 0);
  EXPECT_LT(r.rows(), db_->FindTable("lineitem")->row_count());
  EXPECT_EQ(filter->actual.rows_in[0], db_->FindTable("lineitem")->row_count());
}

TEST_F(EngineTest, SortOrdersOutput) {
  auto sort = std::make_unique<PlanNode>();
  sort->type = OpType::kSort;
  sort->sort_columns = {"lineitem.l_extendedprice"};
  sort->children.push_back(Scan("lineitem", {}, {"l_extendedprice", "l_quantity"}));
  const Relation r = exec_->ExecuteNode(sort.get());
  const int c = r.FindColumn("lineitem.l_extendedprice");
  ASSERT_GE(c, 0);
  for (int64_t i = 1; i < r.rows(); ++i) {
    EXPECT_LE(r.columns[static_cast<size_t>(c)].data[static_cast<size_t>(i - 1)],
              r.columns[static_cast<size_t>(c)].data[static_cast<size_t>(i)]);
  }
  EXPECT_GT(sort->actual.cpu, 0.0);
}

TEST_F(EngineTest, LargeSortSpillsAndChargesIo) {
  // lineitem at SF 0.5 with all columns is ~2.6 MB > 2 MB sort budget.
  auto sort = std::make_unique<PlanNode>();
  sort->type = OpType::kSort;
  sort->sort_columns = {"lineitem.l_extendedprice"};
  sort->children.push_back(Scan("lineitem"));
  exec_->ExecuteNode(sort.get());
  EXPECT_GT(sort->actual.logical_io, 0) << "expected external sort spill";

  // A narrow projection fits in memory: no spill I/O.
  auto small = std::make_unique<PlanNode>();
  small->type = OpType::kSort;
  small->sort_columns = {"lineitem.l_quantity"};
  small->children.push_back(Scan("lineitem", {}, {"l_quantity"}));
  exec_->ExecuteNode(small.get());
  EXPECT_EQ(small->actual.logical_io, 0);
}

TEST_F(EngineTest, TopLimitsRows) {
  auto top = std::make_unique<PlanNode>();
  top->type = OpType::kTop;
  top->limit = 17;
  top->children.push_back(Scan("orders"));
  const Relation r = exec_->ExecuteNode(top.get());
  EXPECT_EQ(r.rows(), 17);
}

TEST_F(EngineTest, HashJoinMatchesNestedLoopSemantics) {
  auto hash = std::make_unique<PlanNode>();
  hash->type = OpType::kHashJoin;
  hash->left_key = "orders.o_custkey";
  hash->right_key = "customer.c_custkey";
  hash->children.push_back(Scan("orders", {}, {"o_orderkey", "o_custkey"}));
  hash->children.push_back(Scan("customer", {}, {"c_custkey", "c_acctbal"}));
  const Relation rh = exec_->ExecuteNode(hash.get());

  auto nl = std::make_unique<PlanNode>();
  nl->type = OpType::kNestedLoopJoin;
  nl->left_key = "orders.o_custkey";
  nl->right_key = "customer.c_custkey";
  nl->children.push_back(Scan("orders", {}, {"o_orderkey", "o_custkey"}));
  nl->children.push_back(Scan("customer", {}, {"c_custkey", "c_acctbal"}));
  const Relation rn = exec_->ExecuteNode(nl.get());

  EXPECT_EQ(rh.rows(), rn.rows());
  // Every order has exactly one customer: output rows = orders rows.
  EXPECT_EQ(rh.rows(), db_->FindTable("orders")->row_count());
}

TEST_F(EngineTest, MergeJoinMatchesHashJoin) {
  auto make_sorted = [&](const char* table, std::vector<std::string> cols,
                         const std::string& key) {
    auto sort = std::make_unique<PlanNode>();
    sort->type = OpType::kSort;
    sort->sort_columns = {key};
    sort->children.push_back(Scan(table, {}, std::move(cols)));
    return sort;
  };
  auto merge = std::make_unique<PlanNode>();
  merge->type = OpType::kMergeJoin;
  merge->left_key = "orders.o_custkey";
  merge->right_key = "customer.c_custkey";
  merge->children.push_back(
      make_sorted("orders", {"o_orderkey", "o_custkey"}, "orders.o_custkey"));
  merge->children.push_back(
      make_sorted("customer", {"c_custkey", "c_acctbal"}, "customer.c_custkey"));
  const Relation rm = exec_->ExecuteNode(merge.get());
  EXPECT_EQ(rm.rows(), db_->FindTable("orders")->row_count());
}

TEST_F(EngineTest, IndexNestedLoopJoinMatchesHashJoin) {
  auto inlj = std::make_unique<PlanNode>();
  inlj->type = OpType::kIndexNestedLoopJoin;
  inlj->left_key = "customer.c_custkey";
  inlj->inner_table = "orders";
  inlj->inner_key = "o_custkey";
  inlj->inner_output_columns = {"o_orderkey", "o_custkey"};
  inlj->children.push_back(
      Scan("customer", {Predicate{"c_custkey", Predicate::Op::kLe, 0, 50}},
           {"c_custkey"}));
  const Relation r = exec_->ExecuteNode(inlj.get());

  const Table* o = db_->FindTable("orders");
  const int ck = o->FindColumn("o_custkey");
  int64_t expected = 0;
  for (Value v : o->column(static_cast<size_t>(ck)).data) expected += (v <= 50);
  EXPECT_EQ(r.rows(), expected);
  EXPECT_GT(inlj->actual.logical_io, 0);
}

TEST_F(EngineTest, HashAggregateGroupCountsMatchDistinct) {
  auto agg = std::make_unique<PlanNode>();
  agg->type = OpType::kHashAggregate;
  agg->group_columns = {"lineitem.l_returnflag"};
  agg->num_aggregates = 2;
  agg->children.push_back(Scan("lineitem", {}, {"l_returnflag", "l_quantity"}));
  const Relation r = exec_->ExecuteNode(agg.get());
  EXPECT_EQ(r.rows(), 3);  // l_returnflag has 3 values
  EXPECT_EQ(static_cast<int>(r.columns.size()), 3);  // group col + 2 aggs
}

TEST_F(EngineTest, StreamAggregateMatchesHashAggregate) {
  auto sorted_scan = std::make_unique<PlanNode>();
  sorted_scan->type = OpType::kSort;
  sorted_scan->sort_columns = {"lineitem.l_shipmode"};
  sorted_scan->children.push_back(Scan("lineitem", {}, {"l_shipmode", "l_quantity"}));

  auto agg = std::make_unique<PlanNode>();
  agg->type = OpType::kStreamAggregate;
  agg->group_columns = {"lineitem.l_shipmode"};
  agg->num_aggregates = 1;
  agg->children.push_back(std::move(sorted_scan));
  const Relation rs = exec_->ExecuteNode(agg.get());

  auto hash = std::make_unique<PlanNode>();
  hash->type = OpType::kHashAggregate;
  hash->group_columns = {"lineitem.l_shipmode"};
  hash->num_aggregates = 1;
  hash->children.push_back(Scan("lineitem", {}, {"l_shipmode", "l_quantity"}));
  const Relation rh = exec_->ExecuteNode(hash.get());

  EXPECT_EQ(rs.rows(), rh.rows());
}

TEST_F(EngineTest, ComputeScalarAddsColumns) {
  auto cs = std::make_unique<PlanNode>();
  cs->type = OpType::kComputeScalar;
  cs->num_expressions = 2;
  cs->children.push_back(Scan("customer", {}, {"c_custkey"}));
  const Relation r = exec_->ExecuteNode(cs.get());
  EXPECT_EQ(static_cast<int>(r.columns.size()), 3);
  EXPECT_EQ(r.rows(), db_->FindTable("customer")->row_count());
}

TEST_F(EngineTest, CpuNoiseIsBoundedAndIoDeterministic) {
  // Re-running the same scan with different noise seeds changes CPU slightly
  // but never logical I/O.
  std::vector<double> cpus;
  int64_t io = -1;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Executor e(db_.get(), seed);
    auto scan = Scan("orders");
    e.ExecuteNode(scan.get());
    cpus.push_back(scan->actual.cpu);
    if (io < 0) io = scan->actual.logical_io;
    EXPECT_EQ(scan->actual.logical_io, io);
  }
  const double spread = (Max(cpus) - Min(cpus)) / Mean(cpus);
  EXPECT_GT(spread, 0.0);
  EXPECT_LT(spread, 0.5);
}

TEST_F(EngineTest, SortCpuScalesSuperlinearly) {
  // CPU(sort of 4n rows) should exceed 4x CPU(sort of n rows) thanks to the
  // n log n comparison count (noise is far smaller than the gap).
  auto run_sort = [&](Value max_key) {
    auto sort = std::make_unique<PlanNode>();
    sort->type = OpType::kSort;
    sort->sort_columns = {"lineitem.l_extendedprice"};
    sort->children.push_back(
        Scan("lineitem", {Predicate{"l_linekey", Predicate::Op::kLe, 0, max_key}},
             {"l_extendedprice"}));
    exec_->ExecuteNode(sort.get());
    return sort->actual.cpu;
  };
  const double small = run_sort(2000);
  const double large = run_sort(8000);
  EXPECT_GT(large, 4.0 * small);
}

TEST_F(EngineTest, PipelineDecompositionBreaksAtBlockingOperators) {
  // Sort(HashJoin(Scan, Scan)) -> pipelines: {Sort}, {HashJoin, probe Scan},
  // {build Scan}.
  Plan plan;
  auto join = std::make_unique<PlanNode>();
  join->type = OpType::kHashJoin;
  join->left_key = "orders.o_custkey";
  join->right_key = "customer.c_custkey";
  join->children.push_back(Scan("orders", {}, {"o_custkey"}));
  join->children.push_back(Scan("customer", {}, {"c_custkey"}));
  auto sort = std::make_unique<PlanNode>();
  sort->type = OpType::kSort;
  sort->sort_columns = {"orders.o_custkey"};
  sort->children.push_back(std::move(join));
  plan.root = std::move(sort);

  const auto pipelines = DecomposePipelines(plan);
  ASSERT_EQ(pipelines.size(), 3u);
  EXPECT_EQ(pipelines[0].nodes.size(), 1u);  // Sort alone
  EXPECT_EQ(pipelines[1].nodes.size(), 2u);  // HashJoin + probe scan
  EXPECT_EQ(pipelines[2].nodes.size(), 1u);  // build scan
}

TEST_F(EngineTest, PlanTotalsSumOperators) {
  Plan plan;
  auto agg = std::make_unique<PlanNode>();
  agg->type = OpType::kHashAggregate;
  agg->group_columns = {"lineitem.l_shipmode"};
  agg->num_aggregates = 1;
  agg->children.push_back(Scan("lineitem", {}, {"l_shipmode", "l_quantity"}));
  plan.root = std::move(agg);
  Executor e(db_.get(), 3);
  e.Execute(&plan);
  double cpu = 0;
  int64_t io = 0;
  plan.root->Visit([&](const PlanNode* n) {
    cpu += n->actual.cpu;
    io += n->actual.logical_io;
  });
  EXPECT_DOUBLE_EQ(plan.TotalActualCpu(), cpu);
  EXPECT_EQ(plan.TotalActualIo(), io);
  EXPECT_EQ(plan.NumOperators(), 2);
}

}  // namespace
}  // namespace resest
