// Unit and corruption tests for the observation WAL (src/storage/wal.h,
// segment.h, recovery.h): round-trip encoding, segment sealing, torn-tail
// truncation, and the full corruption matrix — truncated tail, bit-flipped
// CRC, zero-length record, duplicate segment sequence, sequence gap, and a
// segment from a newer format version. Every case must recover the longest
// valid prefix, never crash, and never read past the corruption. Disk-full
// (ENOSPC) is simulated through the fault hook and must fail cleanly while
// keeping the on-disk prefix recoverable.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/serial.h"
#include "src/storage/recovery.h"
#include "src/storage/segment.h"
#include "src/storage/wal.h"

namespace resest {
namespace {

std::string FreshDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

WalRecord ObsRecord(int i) {
  WalRecord rec;
  rec.type = WalRecordType::kObservation;
  rec.observation.op = static_cast<OpType>(i % kNumOpTypes);
  rec.observation.resource = static_cast<Resource>(i % kNumResources);
  rec.observation.model_version = 7;
  rec.observation.label = 1.5 * i + 0.25;
  rec.observation.features[0] = static_cast<double>(i);
  rec.observation.features[kNumFeatures - 1] = -static_cast<double>(i);
  return rec;
}

struct Replayed {
  std::vector<WalRecord> records;
  RecoveryStats stats;
};

Replayed Replay(const std::string& dir, const std::string& name) {
  Replayed out;
  EXPECT_TRUE(ReplayObservationLog(
      dir, name, [&](const WalRecord& r) { out.records.push_back(r); },
      &out.stats));
  return out;
}

void OverwriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

TEST(Crc32cTest, KnownAnswer) {
  // The CRC-32C check value: crc of the ASCII digits "123456789".
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(digits), 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(WalRecordTest, EncodeDecodeRoundTripsEveryType) {
  WalRecord obs = ObsRecord(3);
  WalRecord marker;
  marker.type = WalRecordType::kRefitMarker;
  marker.refit = {OpType::kHashJoin, Resource::kIo, 123, 4.5, 9};
  WalRecord checkpoint;
  checkpoint.type = WalRecordType::kCheckpoint;
  checkpoint.checkpoint.base_version = 42;
  checkpoint.checkpoint.slots[1][1] = {77, 8.25};

  for (const WalRecord& in : {obs, marker, checkpoint}) {
    std::vector<uint8_t> payload;
    EncodeWalRecord(in, &payload);
    WalRecord out;
    ASSERT_TRUE(DecodeWalRecord(payload.data(), payload.size(), &out));
    EXPECT_EQ(out.type, in.type);
  }
  WalRecord out;
  ASSERT_TRUE(DecodeWalRecord(nullptr, 0, &out) == false);

  std::vector<uint8_t> payload;
  EncodeWalRecord(obs, &payload);
  WalRecord decoded;
  ASSERT_TRUE(DecodeWalRecord(payload.data(), payload.size(), &decoded));
  EXPECT_EQ(decoded.observation.op, obs.observation.op);
  EXPECT_EQ(decoded.observation.resource, obs.observation.resource);
  EXPECT_EQ(decoded.observation.model_version, obs.observation.model_version);
  EXPECT_EQ(decoded.observation.label, obs.observation.label);
  EXPECT_EQ(decoded.observation.features, obs.observation.features);
  // Truncated payloads must fail, not read past the end.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeWalRecord(payload.data(), cut, &decoded));
  }
}

TEST(WalTest, AppendReopenReplayPreservesOrder) {
  const std::string dir = FreshDir("resest_wal_roundtrip");
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
    ASSERT_TRUE(wal.Sync());
    EXPECT_EQ(wal.stats().records_appended, 10u);
    EXPECT_TRUE(wal.ok());
  }
  const Replayed replay = Replay(dir, "log");
  EXPECT_TRUE(replay.stats.clean());
  ASSERT_EQ(replay.records.size(), 10u);
  EXPECT_EQ(replay.stats.rows_recovered, 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replay.records[static_cast<size_t>(i)].observation.label,
              ObsRecord(i).observation.label);
  }
  // Reopening appends after the existing records, not over them.
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    ASSERT_TRUE(wal.Append(ObsRecord(10)));
  }
  EXPECT_EQ(Replay(dir, "log").records.size(), 11u);
}

TEST(WalTest, SealsAtThresholdAndReplaysSegmentsInOrder) {
  const std::string dir = FreshDir("resest_wal_seal");
  WalOptions options;
  options.segment_bytes = 2048;  // a few records per segment
  {
    WriteAheadLog wal(dir, "log", options);
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
    EXPECT_GE(wal.stats().segments_sealed, 2u);
    EXPECT_EQ(wal.active_seq(), wal.stats().segments_sealed + 1);
  }
  const auto segments = ListSegmentFiles(dir, "log");
  ASSERT_GE(segments.size(), 2u);
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].seq, i + 1);
  }
  const Replayed replay = Replay(dir, "log");
  EXPECT_TRUE(replay.stats.clean());
  EXPECT_EQ(replay.stats.segments_replayed, segments.size());
  ASSERT_EQ(replay.records.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(replay.records[static_cast<size_t>(i)].observation.label,
              ObsRecord(i).observation.label);
  }
}

TEST(WalTest, ExplicitSealRollsTheActiveFile) {
  const std::string dir = FreshDir("resest_wal_explicit_seal");
  WriteAheadLog wal(dir, "log");
  ASSERT_TRUE(wal.Open());
  EXPECT_TRUE(wal.Seal());  // empty active file: a no-op
  EXPECT_EQ(wal.stats().segments_sealed, 0u);
  ASSERT_TRUE(wal.Append(ObsRecord(0)));
  EXPECT_TRUE(wal.Seal());
  EXPECT_EQ(wal.stats().segments_sealed, 1u);
  EXPECT_EQ(wal.active_seq(), 2u);
  ASSERT_TRUE(wal.Append(ObsRecord(1)));
  const Replayed replay = Replay(dir, "log");
  EXPECT_TRUE(replay.stats.clean());
  EXPECT_EQ(replay.records.size(), 2u);
}

TEST(WalCorruptionTest, TruncatedTailRecoversLongestValidPrefix) {
  const std::string dir = FreshDir("resest_wal_torn");
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
  }
  const std::string active = ActiveWalPath(dir, "log");
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(active, &bytes));
  bytes.resize(bytes.size() - 17);  // tear the last record mid-payload
  OverwriteFile(active, bytes);

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_EQ(replay.records.size(), 7u);
  EXPECT_GT(replay.stats.bytes_dropped, 0u);
  EXPECT_NE(replay.stats.detail.find("torn"), std::string::npos)
      << replay.stats.detail;

  // Reopening truncates the torn tail so new appends land after record 7.
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    EXPECT_GT(wal.stats().truncated_tail_bytes, 0u);
    ASSERT_TRUE(wal.Append(ObsRecord(100)));
  }
  const Replayed after = Replay(dir, "log");
  EXPECT_TRUE(after.stats.clean());
  ASSERT_EQ(after.records.size(), 8u);
  EXPECT_EQ(after.records.back().observation.label,
            ObsRecord(100).observation.label);
}

TEST(WalCorruptionTest, BitFlippedCrcStopsReplayAtTheFlip) {
  const std::string dir = FreshDir("resest_wal_bitflip");
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
  }
  const std::string active = ActiveWalPath(dir, "log");
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(active, &bytes));
  // Flip one payload bit of the 4th record: records 0..2 must survive,
  // 3..7 must be dropped (replay never applies past the first corruption).
  const size_t record_bytes = (bytes.size() - kWalFileHeaderBytes) / 8;
  const size_t flip_at =
      kWalFileHeaderBytes + 3 * record_bytes + kWalRecordFrameBytes + 5;
  bytes[flip_at] ^= 0x40;
  OverwriteFile(active, bytes);

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_EQ(replay.records.size(), 3u);
  // 5 records lost; the estimate counts the 4 still-intact frames after
  // the flipped one (the corrupted record itself no longer parses).
  EXPECT_EQ(replay.stats.records_dropped, 4u);
  EXPECT_NE(replay.stats.detail.find("CRC"), std::string::npos)
      << replay.stats.detail;
}

TEST(WalCorruptionTest, ZeroLengthRecordStopsReplay) {
  const std::string dir = FreshDir("resest_wal_zerolen");
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
  }
  const std::string active = ActiveWalPath(dir, "log");
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(active, &bytes));
  // Append an all-zero frame: length 0 must stop the scan, not loop.
  bytes.insert(bytes.end(), kWalRecordFrameBytes, 0);
  OverwriteFile(active, bytes);

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_EQ(replay.records.size(), 3u);
  EXPECT_NE(replay.stats.detail.find("zero-length"), std::string::npos)
      << replay.stats.detail;
}

TEST(WalCorruptionTest, ImplausibleLengthStopsReplay) {
  const std::string dir = FreshDir("resest_wal_hugelen");
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    ASSERT_TRUE(wal.Append(ObsRecord(0)));
  }
  const std::string active = ActiveWalPath(dir, "log");
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(active, &bytes));
  const uint32_t huge = kWalMaxPayloadBytes + 1;
  uint32_t zero = 0;
  bytes.insert(bytes.end(), reinterpret_cast<const uint8_t*>(&huge),
               reinterpret_cast<const uint8_t*>(&huge) + 4);
  bytes.insert(bytes.end(), reinterpret_cast<const uint8_t*>(&zero),
               reinterpret_cast<const uint8_t*>(&zero) + 4);
  OverwriteFile(active, bytes);

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_NE(replay.stats.detail.find("implausible"), std::string::npos)
      << replay.stats.detail;
}

TEST(WalCorruptionTest, DuplicateSegmentSequenceStopsBeforeTheDuplicate) {
  const std::string dir = FreshDir("resest_wal_dupseq");
  WalOptions options;
  options.segment_bytes = 1024;
  {
    WriteAheadLog wal(dir, "log", options);
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 24; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
  }
  const auto segments = ListSegmentFiles(dir, "log");
  ASSERT_GE(segments.size(), 2u);
  // "log.1.seg" parses to the same sequence as "log.00000001.seg": two
  // files claiming slot 1.
  std::filesystem::copy_file(segments[0].path,
                             std::filesystem::path(dir) / "log.1.seg");

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_NE(replay.stats.detail.find("duplicate segment sequence"),
            std::string::npos)
      << replay.stats.detail;
  // Whatever was applied is a prefix of segment 1's records only.
  uint64_t per_segment = 0;
  {
    WalFileScan scan;
    ASSERT_TRUE(ScanWalFile(segments[0].path, &scan));
    per_segment = scan.records.size();
  }
  EXPECT_LE(replay.records.size(), per_segment);
}

TEST(WalCorruptionTest, SegmentSequenceGapDropsEverythingAfterTheGap) {
  const std::string dir = FreshDir("resest_wal_gap");
  WalOptions options;
  options.segment_bytes = 1024;
  uint64_t appended = 0;
  {
    WriteAheadLog wal(dir, "log", options);
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 36; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
    appended = wal.stats().records_appended;
  }
  auto segments = ListSegmentFiles(dir, "log");
  ASSERT_GE(segments.size(), 3u);
  WalFileScan first;
  ASSERT_TRUE(ScanWalFile(segments[0].path, &first));
  std::filesystem::remove(segments[1].path);

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_NE(replay.stats.detail.find("gap"), std::string::npos)
      << replay.stats.detail;
  // Only the segment(s) before the gap applied; the rest counted as lost.
  EXPECT_EQ(replay.records.size(), first.records.size());
  EXPECT_LT(replay.records.size() + replay.stats.records_dropped, appended + 1);
}

TEST(WalCorruptionTest, NewerFormatVersionIsNeverApplied) {
  const std::string dir = FreshDir("resest_wal_newver");
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
    ASSERT_TRUE(wal.Seal());
  }
  const auto segments = ListSegmentFiles(dir, "log");
  ASSERT_EQ(segments.size(), 1u);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(segments[0].path, &bytes));
  const uint32_t newer = kWalFormatVersion + 1;
  std::memcpy(bytes.data() + 4, &newer, sizeof(newer));  // header: version
  OverwriteFile(segments[0].path, bytes);

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_TRUE(replay.records.empty());
  EXPECT_NE(replay.stats.detail.find("newer"), std::string::npos)
      << replay.stats.detail;
}

TEST(WalCorruptionTest, SegmentRenamedToWrongSequenceIsRejected) {
  const std::string dir = FreshDir("resest_wal_renamed");
  WalOptions options;
  options.segment_bytes = 1024;
  {
    WriteAheadLog wal(dir, "log", options);
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 24; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
  }
  auto segments = ListSegmentFiles(dir, "log");
  ASSERT_GE(segments.size(), 2u);
  // Move segment 1 out of the way and give segment 2's file its name: the
  // file header still says seq 2, which must not pass for slot 1.
  std::filesystem::remove(segments[0].path);
  std::filesystem::rename(segments[1].path, segments[0].path);

  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_TRUE(replay.records.empty());
  EXPECT_NE(replay.stats.detail.find("sequence mismatch"), std::string::npos)
      << replay.stats.detail;
}

TEST(WalFaultTest, DiskFullFailsCleanlyAndKeepsPrefixRecoverable) {
  const std::string dir = FreshDir("resest_wal_diskfull");
  WalOptions options;
  int writes = 0;
  // Every record write after the 5th fails without touching the file —
  // the ENOSPC shape (headers pass so Open() itself succeeds).
  options.fault_hook = [&writes](const WalFaultContext& ctx) {
    if (ctx.op != WalFaultOp::kWrite || ctx.is_header) {
      return WalFaultAction::kProceed;
    }
    return ++writes > 5 ? WalFaultAction::kFail : WalFaultAction::kProceed;
  };
  WriteAheadLog wal(dir, "log", options);
  ASSERT_TRUE(wal.Open());
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += wal.Append(ObsRecord(i)) ? 1 : 0;
  EXPECT_EQ(accepted, 5);
  EXPECT_FALSE(wal.ok());  // sticky: the log stopped accepting writes
  EXPECT_FALSE(wal.Append(ObsRecord(99)));
  EXPECT_GE(wal.stats().append_failures, 5u);

  // The accepted prefix replays cleanly — a full disk corrupts nothing.
  const Replayed replay = Replay(dir, "log");
  EXPECT_TRUE(replay.stats.clean());
  EXPECT_EQ(replay.records.size(), 5u);
}

TEST(WalFaultTest, ShortWriteLeavesATornTailThatOpenTruncates) {
  const std::string dir = FreshDir("resest_wal_shortwrite");
  WalOptions options;
  int writes = 0;
  options.fault_hook = [&writes](const WalFaultContext& ctx) {
    if (ctx.op != WalFaultOp::kWrite || ctx.is_header) {
      return WalFaultAction::kProceed;
    }
    return ++writes == 4 ? WalFaultAction::kShortWrite
                         : WalFaultAction::kProceed;
  };
  {
    WriteAheadLog wal(dir, "log", options);
    ASSERT_TRUE(wal.Open());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(wal.Append(ObsRecord(i)));
    EXPECT_FALSE(wal.Append(ObsRecord(3)));  // torn on disk
    EXPECT_FALSE(wal.ok());
  }
  const Replayed replay = Replay(dir, "log");
  EXPECT_FALSE(replay.stats.clean());
  EXPECT_EQ(replay.records.size(), 3u);

  // A fresh (un-faulted) open truncates the torn bytes and appends cleanly.
  {
    WriteAheadLog wal(dir, "log");
    ASSERT_TRUE(wal.Open());
    EXPECT_GT(wal.stats().truncated_tail_bytes, 0u);
    ASSERT_TRUE(wal.Append(ObsRecord(3)));
  }
  const Replayed after = Replay(dir, "log");
  EXPECT_TRUE(after.stats.clean());
  EXPECT_EQ(after.records.size(), 4u);
}

TEST(WalRecoveryTest, MissingDirectoryIsACleanEmptyReplay) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "resest_wal_never_created";
  std::filesystem::remove_all(dir);
  const Replayed replay = Replay(dir.string(), "log");
  EXPECT_TRUE(replay.stats.clean());
  EXPECT_TRUE(replay.records.empty());
}

}  // namespace
}  // namespace resest
