// Golden determinism suite for the incremental retraining pipeline: a refit
// from (seed rows + appended rows) must be byte-identical to a from-scratch
// train on the concatenated dataset — for every (OpType, Resource) pair —
// a refit below the policy threshold must be a no-op that publishes
// nothing, and delta estimators must share every untouched model set with
// their predecessor by pointer.
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/serial.h"
#include "src/common/thread_pool.h"
#include "src/serving/model_registry.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

class IncrementalTrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 0.6, 1.0, 42).release();
    Rng rng(7);
    auto seed_queries = GenerateTpchWorkload(60, &rng, db_);
    auto extra_queries = GenerateTpchWorkload(30, &rng, db_);
    seed_ = new std::vector<ExecutedQuery>(RunWorkload(db_, seed_queries));
    extra_ =
        new std::vector<ExecutedQuery>(RunWorkload(db_, extra_queries, 11));
  }
  static void TearDownTestSuite() {
    delete extra_;
    extra_ = nullptr;
    delete seed_;
    seed_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static TrainOptions SmallOptions() {
    TrainOptions options;
    options.mart.num_trees = 20;  // identity is what matters, keep it cheap
    return options;
  }

  /// Serialized bytes of one slot's model set (empty vector = no model).
  static std::vector<uint8_t> SlotBytes(const ResourceEstimator& est,
                                        OpType op, Resource r) {
    std::vector<uint8_t> bytes;
    const OperatorModelSet* set = est.ModelsFor(op, r);
    if (set != nullptr) {
      ByteWriter w(&bytes);
      set->SerializeTo(&w);
    }
    return bytes;
  }

  static Database* db_;
  static std::vector<ExecutedQuery>* seed_;
  static std::vector<ExecutedQuery>* extra_;
};

Database* IncrementalTrainerTest::db_ = nullptr;
std::vector<ExecutedQuery>* IncrementalTrainerTest::seed_ = nullptr;
std::vector<ExecutedQuery>* IncrementalTrainerTest::extra_ = nullptr;

TEST_F(IncrementalTrainerTest, SeedTrainingMatchesFromScratchByteForByte) {
  IncrementalTrainer trainer(SmallOptions());
  const auto seeded = trainer.SeedAndTrain(*seed_);
  ASSERT_NE(seeded, nullptr);
  const ResourceEstimator from_scratch =
      ResourceEstimator::Train(*seed_, SmallOptions());
  EXPECT_EQ(seeded->Serialize(), from_scratch.Serialize());
}

TEST_F(IncrementalTrainerTest, RefitMatchesFromScratchOnConcatenatedData) {
  IncrementalTrainer trainer(SmallOptions());
  trainer.SeedAndTrain(*seed_);
  trainer.ObserveAll(*extra_);
  const auto refit = trainer.RefitAll();
  ASSERT_TRUE(refit);

  // ExecutedQuery owns its plan (unique_ptr), so the concatenated dataset
  // cannot be materialized as one vector sharing the fixtures' plans.
  // Golden path instead: a fresh trainer fed the exact concatenated stream
  // in one go, then force-fitted — Observe() appends in the same order
  // Train() collects, and SeedTrainingMatchesFromScratch pins that a
  // forced full fit of such logs IS ResourceEstimator::Train on the same
  // stream, so this golden is from-scratch training on seed+extra.
  IncrementalTrainer golden(SmallOptions());
  {
    std::vector<ExecutedQuery> empty;
    golden.SeedAndTrain(empty);
  }
  for (const auto& eq : *seed_) golden.Observe(eq);
  for (const auto& eq : *extra_) golden.Observe(eq);
  const auto scratch = golden.RefitAll();
  ASSERT_TRUE(scratch);

  // Full-store equality: every slot, fallback means and options included.
  EXPECT_EQ(refit.estimator->Serialize(), scratch.estimator->Serialize());
  // And per-(OpType, Resource) for pinpointed failures.
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      const OpType o = static_cast<OpType>(op);
      const Resource res = static_cast<Resource>(r);
      EXPECT_EQ(SlotBytes(*refit.estimator, o, res),
                SlotBytes(*scratch.estimator, o, res))
          << OpTypeName(o) << "/" << ResourceName(res);
      EXPECT_EQ(refit.estimator->FallbackMean(o, res),
                scratch.estimator->FallbackMean(o, res))
          << OpTypeName(o) << "/" << ResourceName(res);
    }
  }
}

TEST_F(IncrementalTrainerTest, ConcatenatedGoldenAgainstTrainDirectly) {
  // The previous test's golden path goes through the trainer; this one pins
  // the trainer-free anchor: seeding one trainer with two workloads in
  // sequence and force-refitting equals ResourceEstimator::Train on a
  // single workload containing the same queries, executed identically.
  Rng rng(77);
  auto queries = GenerateTpchWorkload(40, &rng, db_);
  const auto executed = RunWorkload(db_, queries, 13);
  const size_t split = executed.size() / 2;

  IncrementalTrainer trainer(SmallOptions());
  {
    std::vector<ExecutedQuery> empty;
    trainer.SeedAndTrain(empty);
  }
  for (size_t i = 0; i < executed.size(); ++i) {
    trainer.Observe(executed[i]);
    if (i + 1 == split) trainer.RefitAll();  // mid-stream refit
  }
  const auto final_refit = trainer.RefitAll();
  ASSERT_TRUE(final_refit);

  const ResourceEstimator from_scratch =
      ResourceEstimator::Train(executed, SmallOptions());
  EXPECT_EQ(final_refit.estimator->Serialize(), from_scratch.Serialize());
}

TEST_F(IncrementalTrainerTest, BelowThresholdRefitIsANoOp) {
  RefitPolicy strict;
  strict.min_new_rows = 1000000;  // unreachable
  strict.drift_threshold = 0.0;   // disabled
  IncrementalTrainer trainer(SmallOptions(), strict);
  trainer.SeedAndTrain(*seed_);
  const auto base = trainer.base();
  trainer.ObserveAll(*extra_);

  EXPECT_TRUE(trainer.AffectedSlots().empty());
  const auto refit = trainer.RefitAffected();
  EXPECT_FALSE(refit);
  EXPECT_EQ(refit.estimator, nullptr);
  EXPECT_TRUE(refit.refitted.empty());
  EXPECT_EQ(trainer.base(), base);  // baseline untouched

  // And through the publish path: nothing is published.
  ModelRegistry registry;
  const uint64_t v1 = trainer.PublishBaseline(&registry, "m");
  ASSERT_GT(v1, 0u);
  const auto published = trainer.RefitAndPublish(&registry, "m");
  EXPECT_FALSE(published);
  EXPECT_EQ(published.version, 0u);
  EXPECT_EQ(registry.Get("m").version, v1);
  EXPECT_EQ(registry.Versions("m").size(), 1u);

  // The pending rows are not lost: loosening nothing, they still count.
  EXPECT_GT(trainer.TotalPendingRows(), 0u);
}

TEST_F(IncrementalTrainerTest, RowCountThresholdTriggersOnlyCrossedSlots) {
  RefitPolicy policy;
  policy.min_new_rows = 8;
  policy.drift_threshold = 0.0;
  IncrementalTrainer trainer(SmallOptions(), policy);
  trainer.SeedAndTrain(*seed_);

  // Append to exactly one slot, just past the threshold.
  FeatureVector row{};
  row.fill(1.0);
  for (size_t i = 0; i < policy.min_new_rows; ++i) {
    row[0] = static_cast<double>(i + 1);
    trainer.Append(OpType::kSort, Resource::kCpu, row, 5.0 + i);
  }
  const auto affected = trainer.AffectedSlots();
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0],
            (ModelSlotId{OpType::kSort, Resource::kCpu}));

  const auto base = trainer.base();
  const auto refit = trainer.RefitAffected();
  ASSERT_TRUE(refit);
  ASSERT_EQ(refit.refitted.size(), 1u);
  EXPECT_EQ(refit.refitted[0],
            (ModelSlotId{OpType::kSort, Resource::kCpu}));

  // Untouched slots share the predecessor's model sets by pointer — the
  // delta-sharing guarantee.
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      const OpType o = static_cast<OpType>(op);
      const Resource res = static_cast<Resource>(r);
      if (o == OpType::kSort && res == Resource::kCpu) {
        EXPECT_NE(refit.estimator->ModelsFor(o, res), base->ModelsFor(o, res));
      } else {
        EXPECT_EQ(refit.estimator->ModelsFor(o, res), base->ModelsFor(o, res))
            << OpTypeName(o) << "/" << ResourceName(res);
        EXPECT_EQ(refit.estimator->FallbackMean(o, res),
                  base->FallbackMean(o, res));
      }
    }
  }
  // After the refit the slot is clean again.
  EXPECT_EQ(trainer.LogStats(OpType::kSort, Resource::kCpu).pending, 0u);
  EXPECT_TRUE(trainer.AffectedSlots().empty());
}

TEST_F(IncrementalTrainerTest, DriftThresholdTriggersWithoutRowCount) {
  RefitPolicy policy;
  policy.min_new_rows = 1000000;  // row-count trigger unreachable
  policy.drift_threshold = 0.25;
  IncrementalTrainer trainer(SmallOptions(), policy);
  trainer.SeedAndTrain(*seed_);

  // A handful of rows whose labels are far above the historical mean: the
  // cumulative mean drifts past the threshold long before any row count.
  const auto stats = trainer.LogStats(OpType::kTableScan, Resource::kCpu);
  ASSERT_GT(stats.rows, 0u);
  FeatureVector row{};
  row.fill(2.0);
  const double huge = 1e9;
  size_t appended = 0;
  while (trainer.AffectedSlots().empty() && appended < stats.rows + 10) {
    trainer.Append(OpType::kTableScan, Resource::kCpu, row, huge);
    ++appended;
  }
  const auto affected = trainer.AffectedSlots();
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0],
            (ModelSlotId{OpType::kTableScan, Resource::kCpu}));
  EXPECT_LT(appended, policy.min_new_rows);
}

TEST_F(IncrementalTrainerTest, UnpublishedRefitsAreStampedOnNextPublish) {
  // A RefitAffected() round that is never published still diverges the
  // trainer's base from the registry's; the next RefitAndPublish must
  // stamp (and invalidate) those slots too, or stale cache entries could
  // hit under an unchanged-looking slot version.
  RefitPolicy policy;
  policy.min_new_rows = 4;
  policy.drift_threshold = 0.0;
  IncrementalTrainer trainer(SmallOptions(), policy);
  trainer.SeedAndTrain(*seed_);
  ModelRegistry registry;
  const uint64_t v1 = trainer.PublishBaseline(&registry, "m");
  ASSERT_GT(v1, 0u);

  FeatureVector row{};
  row.fill(1.0);
  // Round 1: refit (kSort, kCpu) without publishing.
  for (size_t i = 0; i < policy.min_new_rows; ++i) {
    row[0] = static_cast<double>(i);
    trainer.Append(OpType::kSort, Resource::kCpu, row, 5.0 + i);
  }
  ASSERT_TRUE(trainer.RefitAffected());
  // Round 2: a different slot crosses; this time publish.
  for (size_t i = 0; i < policy.min_new_rows; ++i) {
    row[0] = static_cast<double>(i + 10);
    trainer.Append(OpType::kHashJoin, Resource::kCpu, row, 3.0 + i);
  }
  const auto published = trainer.RefitAndPublish(&registry, "m");
  ASSERT_TRUE(published);
  ASSERT_EQ(published.refitted,
            (std::vector<ModelSlotId>{{OpType::kHashJoin, Resource::kCpu}}));

  // The published lineage stamps BOTH diverged slots with the new version;
  // untouched slots inherit the baseline's.
  const ModelSnapshot snap = registry.Get("m");
  EXPECT_EQ(snap.version, published.version);
  EXPECT_EQ(snap.SlotVersion(OpType::kSort, Resource::kCpu),
            published.version);
  EXPECT_EQ(snap.SlotVersion(OpType::kHashJoin, Resource::kCpu),
            published.version);
  EXPECT_EQ(snap.SlotVersion(OpType::kTableScan, Resource::kIo), v1);

  // A second publish with nothing new pending is still a no-op.
  EXPECT_FALSE(trainer.RefitAndPublish(&registry, "m"));
  EXPECT_EQ(registry.Get("m").version, published.version);
}

TEST_F(IncrementalTrainerTest, PoolRefitByteIdenticalToSerialRefit) {
  ThreadPool pool(4);
  IncrementalTrainer pooled(SmallOptions(), RefitPolicy{}, &pool);
  IncrementalTrainer serial(SmallOptions(), RefitPolicy{}, nullptr);
  const auto pooled_base = pooled.SeedAndTrain(*seed_);
  const auto serial_base = serial.SeedAndTrain(*seed_);
  EXPECT_EQ(pooled_base->Serialize(), serial_base->Serialize());

  pooled.ObserveAll(*extra_);
  serial.ObserveAll(*extra_);
  const auto pooled_refit = pooled.RefitAll();
  const auto serial_refit = serial.RefitAll();
  ASSERT_TRUE(pooled_refit);
  ASSERT_TRUE(serial_refit);
  EXPECT_EQ(pooled_refit.estimator->Serialize(),
            serial_refit.estimator->Serialize());
}

TEST_F(IncrementalTrainerTest, RunWorkloadObserverStreamsIntoTheLogs) {
  IncrementalTrainer trainer(SmallOptions());
  {
    std::vector<ExecutedQuery> empty;
    trainer.SeedAndTrain(empty);
  }
  Rng rng(5);
  auto queries = GenerateTpchWorkload(10, &rng, db_);
  size_t observed = 0;
  const auto executed =
      RunWorkload(db_, queries, 7, [&](const ExecutedQuery& eq) {
        trainer.Observe(eq);
        ++observed;
      });
  EXPECT_EQ(observed, executed.size());

  // The streamed logs match a post-hoc ObserveAll of the returned vector.
  IncrementalTrainer post_hoc(SmallOptions());
  {
    std::vector<ExecutedQuery> empty;
    post_hoc.SeedAndTrain(empty);
  }
  post_hoc.ObserveAll(executed);
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      const OpType o = static_cast<OpType>(op);
      const Resource res = static_cast<Resource>(r);
      EXPECT_EQ(trainer.LogStats(o, res).rows, post_hoc.LogStats(o, res).rows);
    }
  }
}

// ---------------------------------------------------------------------------
// Bounded logs: window eviction, reservoir determinism, memory cap, age.
// ---------------------------------------------------------------------------

namespace {

// A synthetic single-slot stream with distinct, index-derived rows.
void AppendSynthetic(IncrementalTrainer* trainer, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    FeatureVector f{};
    f[0] = static_cast<double>(i);
    f[1] = static_cast<double>((i * 13) % 101);
    trainer->Append(OpType::kTableScan, Resource::kCpu, f,
                    static_cast<double>(i % 7) * 0.5);
  }
}

}  // namespace

TEST_F(IncrementalTrainerTest, TightWindowEvictsIntoBoundedReservoir) {
  LogBounds bounds;
  bounds.window_rows = 16;
  bounds.reservoir_rows = 8;
  IncrementalTrainer a(SmallOptions(), RefitPolicy{}, nullptr, bounds);
  IncrementalTrainer b(SmallOptions(), RefitPolicy{}, nullptr, bounds);
  {
    std::vector<ExecutedQuery> empty;
    a.SeedAndTrain(empty);
    b.SeedAndTrain(empty);
  }
  constexpr size_t kRows = 200;
  AppendSynthetic(&a, kRows);
  AppendSynthetic(&b, kRows);

  const auto stats = a.LogStats(OpType::kTableScan, Resource::kCpu);
  EXPECT_EQ(stats.rows, kRows);  // lifetime count survives eviction
  EXPECT_EQ(stats.window, bounds.window_rows);
  EXPECT_EQ(stats.reservoir, bounds.reservoir_rows);
  // Eviction decisions (which rows the reservoir kept) are a deterministic
  // function of the append stream: two identical streams yield
  // byte-identical refits.
  const auto refit_a = a.RefitAll();
  const auto refit_b = b.RefitAll();
  ASSERT_TRUE(refit_a);
  ASSERT_TRUE(refit_b);
  EXPECT_EQ(refit_a.estimator->Serialize(), refit_b.estimator->Serialize());
  // Spill accounting: everything not in window or reservoir was evicted
  // through the reservoir (spilled), and memory tracks live rows exactly.
  const DurabilityStats d = a.durability_stats();
  EXPECT_EQ(d.spilled_rows, kRows - bounds.window_rows);
  EXPECT_EQ(d.memory_bytes,
            (bounds.window_rows + bounds.reservoir_rows) *
                kObservationRowBytes);
  EXPECT_GE(d.memory_peak_bytes, d.memory_bytes);
}

TEST_F(IncrementalTrainerTest, MemoryCapSpillsOldestWindowRows) {
  LogBounds bounds;
  bounds.window_rows = 1 << 20;  // never the binding constraint here
  bounds.reservoir_rows = 4;
  bounds.memory_cap_bytes = 64 * kObservationRowBytes;
  IncrementalTrainer trainer(SmallOptions(), RefitPolicy{}, nullptr, bounds);
  {
    std::vector<ExecutedQuery> empty;
    trainer.SeedAndTrain(empty);
  }
  // Spread rows over several slots so the cap, not the per-slot window,
  // forces eviction.
  for (size_t i = 0; i < 400; ++i) {
    FeatureVector f{};
    f[0] = static_cast<double>(i);
    trainer.Append(static_cast<OpType>(i % 4),
                   static_cast<Resource>(i % kNumResources), f,
                   static_cast<double>(i));
  }
  const DurabilityStats d = trainer.durability_stats();
  EXPECT_EQ(d.memory_cap_bytes, bounds.memory_cap_bytes);
  EXPECT_LE(d.memory_bytes, bounds.memory_cap_bytes);
  EXPECT_GT(d.spilled_rows, 0u);
  // No row count is lost to the cap — lifetime totals still cover the
  // whole stream.
  size_t total = 0;
  for (int op = 0; op < 4; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      total += trainer
                   .LogStats(static_cast<OpType>(op), static_cast<Resource>(r))
                   .rows;
    }
  }
  EXPECT_EQ(total, 400u);
}

TEST_F(IncrementalTrainerTest, AgeTriggerRefitsTrickleSlots) {
  RefitPolicy policy;
  policy.min_new_rows = 1000000;  // count trigger can never fire
  policy.drift_threshold = 0.0;   // drift trigger off
  policy.max_pending_age = std::chrono::milliseconds(20);
  IncrementalTrainer trainer(SmallOptions(), policy);
  {
    std::vector<ExecutedQuery> empty;
    trainer.SeedAndTrain(empty);
  }
  AppendSynthetic(&trainer, 20);  // far below min_new_rows
  EXPECT_TRUE(trainer.AffectedSlots().empty());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const auto affected = trainer.AffectedSlots();
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0].first, OpType::kTableScan);
  EXPECT_EQ(affected[0].second, Resource::kCpu);
  // The aged slot actually refits — and afterwards nothing is pending.
  const auto refit = trainer.RefitAffected();
  ASSERT_TRUE(refit);
  EXPECT_EQ(refit.refitted.size(), 1u);
  EXPECT_EQ(trainer.LogStats(OpType::kTableScan, Resource::kCpu).pending, 0u);
  EXPECT_TRUE(trainer.AffectedSlots().empty());
}

}  // namespace
}  // namespace resest
