// Tests for src/serving/tenant_manager.h: the multi-tenant isolation
// guarantees. Each tenant owns its own estimate-cache region, its own
// slot-version key space (globally monotonic registry versions across
// per-tenant model names), and its own WAL-backed observation log — so one
// tenant's cache flood, refit publish, or crash never bleeds into another
// tenant's state. The crash test follows crash_recovery_test.cc: a forked
// child appending to two tenants' logs is SIGKILLed mid-append, and each
// tenant's recovery must be byte-identical to its own never-crashed oracle.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/thread_pool.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/serving/tenant_manager.h"
#include "src/storage/wal.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

// ---------------------------------------------------------------------------
// Tenant id validation
// ---------------------------------------------------------------------------

TEST(TenantIdTest, AcceptsBoringNamesRejectsPathAndLabelHazards) {
  for (const char* ok :
       {"default", "alpha", "t1", "A", "0", "a.b-c_d", "x9.Y-z_"}) {
    EXPECT_TRUE(IsValidTenantId(ok)) << ok;
  }
  for (const char* bad :
       {"", ".", "..", "-rf", "_x", "a/b", "a b", "a@b", "a\"b", "a\nb",
        "\xc3\xa9"}) {
    EXPECT_FALSE(IsValidTenantId(bad)) << bad;
  }
  EXPECT_TRUE(IsValidTenantId(std::string(kMaxTenantIdLength, 'a')));
  EXPECT_FALSE(IsValidTenantId(std::string(kMaxTenantIdLength + 1, 'a')));
}

// ---------------------------------------------------------------------------
// Shared fixture: one small trained estimator for every tenant to serve.
// ---------------------------------------------------------------------------

class TenantTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 0.3, 1.0, 42).release();
    Rng rng(7);
    auto queries = GenerateTpchWorkload(30, &rng, db_);
    auto workload = RunWorkload(db_, queries);
    TrainOptions options;
    options.mart.num_trees = 15;  // small models keep the suite fast
    estimator_ = new ResourceEstimator(
        ResourceEstimator::Train(workload, options));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    estimator_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static std::shared_ptr<const ResourceEstimator> SharedEstimator() {
    // Non-owning alias: the fixture owns the estimator for the whole suite.
    return std::shared_ptr<const ResourceEstimator>(estimator_,
                                                    [](const auto*) {});
  }

  static std::vector<EstimateRequest> DistinctRequests(int count, int salt) {
    // Only trained (op, resource) slots: untrained slots estimate to a
    // feature-free constant and deliberately bypass the cache, which would
    // skew the exact hit accounting below.
    std::vector<std::pair<OpType, Resource>> trained;
    for (int op = 0; op < kNumOpTypes; ++op) {
      for (int r = 0; r < kNumResources; ++r) {
        const OpType o = static_cast<OpType>(op);
        const Resource res = static_cast<Resource>(r);
        if (estimator_->ModelsFor(o, res) != nullptr) {
          trained.emplace_back(o, res);
        }
      }
    }
    EXPECT_FALSE(trained.empty());
    std::vector<EstimateRequest> requests;
    for (int i = 0; i < count; ++i) {
      FeatureVector features{};
      features[0] = static_cast<double>(salt) * 10000.0 + i;
      features[1] = 2.5;
      const auto& slot = trained[static_cast<size_t>(i) % trained.size()];
      requests.push_back(
          EstimateRequest::ForOperator(slot.first, features, slot.second));
    }
    return requests;
  }

  static Database* db_;
  static ResourceEstimator* estimator_;
};

Database* TenantTest::db_ = nullptr;
ResourceEstimator* TenantTest::estimator_ = nullptr;

TEST_F(TenantTest, RegistrationResolutionAndModelNaming) {
  ThreadPool pool(2);
  ModelRegistry registry;
  TenantOptions options;
  options.service.model_name = "m";
  options.enable_coalescing = false;
  TenantManager manager(&registry, &pool, options);

  std::string error;
  ASSERT_NE(manager.AddTenant(kDefaultTenant, &error), nullptr) << error;
  ASSERT_NE(manager.AddTenant("alpha", &error), nullptr) << error;
  EXPECT_EQ(manager.AddTenant("a/b", &error), nullptr);
  EXPECT_FALSE(error.empty());
  // Idempotent: re-adding returns the existing tenant.
  EXPECT_EQ(manager.AddTenant("alpha"), manager.Resolve("alpha"));
  EXPECT_EQ(manager.tenant_count(), 2u);

  // "" resolves to the default tenant; unknown ids resolve to null.
  EXPECT_EQ(manager.Resolve(""), manager.Resolve(kDefaultTenant));
  EXPECT_EQ(manager.Resolve("beta"), nullptr);

  // The default tenant keeps the bare model name; named tenants get @id.
  EXPECT_EQ(manager.Resolve(kDefaultTenant)->model_name, "m");
  EXPECT_EQ(manager.Resolve("alpha")->model_name, "m@alpha");

  // One publish fans out under every tenant's name with distinct versions.
  const uint64_t default_version = manager.PublishToAll(SharedEstimator());
  EXPECT_GT(default_version, 0u);
  EXPECT_NE(registry.Get("m@alpha").version, default_version);
  EXPECT_TRUE(registry.Get("m"));
  EXPECT_TRUE(registry.Get("m@alpha"));
}

TEST_F(TenantTest, CacheFloodInOneTenantNeverEvictsAnother) {
  ThreadPool pool(2);
  ModelRegistry registry;
  TenantOptions options;
  options.service.model_name = "m";
  options.service.cache_capacity = 64;  // tiny region: floods evict fast
  options.service.cache_shards = 1;
  options.enable_coalescing = false;
  TenantManager manager(&registry, &pool, options);
  ASSERT_NE(manager.AddTenant(kDefaultTenant), nullptr);
  ASSERT_NE(manager.AddTenant("alpha", nullptr), nullptr);
  ASSERT_NE(manager.AddTenant("beta", nullptr), nullptr);
  ASSERT_GT(manager.PublishToAll(SharedEstimator()), 0u);
  EstimationService* alpha = manager.Resolve("alpha")->service.get();
  EstimationService* beta = manager.Resolve("beta")->service.get();

  // Warm beta's cache with a working set that fits (32 of 64 entries).
  const auto beta_set = DistinctRequests(32, /*salt=*/1);
  for (const auto& r : beta->EstimateBatch(beta_set)) ASSERT_TRUE(r.ok());
  for (const auto& r : beta->EstimateBatch(beta_set)) ASSERT_TRUE(r.ok());
  const ServiceStats beta_warm = beta->stats();
  EXPECT_EQ(beta_warm.cache_hits, 32u);

  // Flood alpha far past its capacity: alpha must evict...
  for (const auto& r :
       alpha->EstimateBatch(DistinctRequests(400, /*salt=*/2))) {
    ASSERT_TRUE(r.ok());
  }
  EXPECT_GT(alpha->stats().cache_evictions, 0u);

  // ...while beta's region is untouched: the whole working set still hits.
  for (const auto& r : beta->EstimateBatch(beta_set)) ASSERT_TRUE(r.ok());
  const ServiceStats beta_after = beta->stats();
  EXPECT_EQ(beta_after.cache_hits, beta_warm.cache_hits + 32);
  EXPECT_EQ(beta_after.cache_misses, beta_warm.cache_misses);
  EXPECT_EQ(beta_after.cache_evictions, 0u);
}

TEST_F(TenantTest, RefitPublishInOneTenantKeepsAnotherTenantsKeysLive) {
  ThreadPool pool(2);
  ModelRegistry registry;
  TenantOptions options;
  options.service.model_name = "m";
  options.enable_coalescing = false;
  TenantManager manager(&registry, &pool, options);
  ASSERT_NE(manager.AddTenant(kDefaultTenant), nullptr);
  ASSERT_NE(manager.AddTenant("alpha", nullptr), nullptr);
  ASSERT_NE(manager.AddTenant("beta", nullptr), nullptr);
  ASSERT_GT(manager.PublishToAll(SharedEstimator()), 0u);
  EstimationService* alpha = manager.Resolve("alpha")->service.get();
  EstimationService* beta = manager.Resolve("beta")->service.get();

  // Warm both tenants on the same logical working set.
  const auto working_set = DistinctRequests(24, /*salt=*/3);
  for (const auto& r : alpha->EstimateBatch(working_set)) ASSERT_TRUE(r.ok());
  for (const auto& r : beta->EstimateBatch(working_set)) ASSERT_TRUE(r.ok());
  const uint64_t beta_misses_warm = beta->stats().cache_misses;

  // Alpha publishes a new model version (what a refit does). Registry
  // versions are globally monotonic across names, so alpha's new version
  // opens a fresh key space for alpha only.
  const uint64_t alpha_v2 = registry.Publish("m@alpha", SharedEstimator());
  ASSERT_GT(alpha_v2, 0u);

  // Alpha's cached keys are cold (new slot versions)...
  const uint64_t alpha_hits_before = alpha->stats().cache_hits;
  for (const auto& r : alpha->EstimateBatch(working_set)) ASSERT_TRUE(r.ok());
  EXPECT_EQ(alpha->stats().cache_hits, alpha_hits_before);

  // ...while beta's stayed live: every request hits, zero new misses.
  const uint64_t beta_hits_before = beta->stats().cache_hits;
  for (const auto& r : beta->EstimateBatch(working_set)) ASSERT_TRUE(r.ok());
  EXPECT_EQ(beta->stats().cache_hits,
            beta_hits_before + working_set.size());
  EXPECT_EQ(beta->stats().cache_misses, beta_misses_warm);
}

// ---------------------------------------------------------------------------
// Two-tenant WAL crash recovery (crash_recovery_test.cc mechanics)
// ---------------------------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// Deterministic per-tenant append streams: pure functions of (tenant salt,
// row index), so each oracle regenerates exactly its tenant's durable
// prefix and any cross-tenant bleed would break byte-identity.
OpType OpAt(int salt, uint64_t i) {
  return static_cast<OpType>((i * 7 + static_cast<uint64_t>(salt)) %
                             kNumOpTypes);
}
Resource ResourceAt(uint64_t i) {
  return static_cast<Resource>(i % kNumResources);
}
FeatureVector RowAt(int salt, uint64_t i) {
  FeatureVector f{};
  f[0] = static_cast<double>((i + static_cast<uint64_t>(salt) * 1000) % 97);
  f[1] = static_cast<double>((i * 31) % 251);
  f[2] = static_cast<double>(i) * 0.5 + salt;
  return f;
}
double LabelAt(int salt, uint64_t i) {
  return static_cast<double>(i % 13) * 1.25 +
         static_cast<double>(i) * 0.001 + salt;
}

TrainOptions TinyOptions() {
  TrainOptions options;
  options.mart.num_trees = 5;
  options.min_rows_per_operator = 4;
  return options;
}

LogBounds TightBounds() {
  LogBounds bounds;
  bounds.window_rows = 8;
  bounds.reservoir_rows = 6;
  return bounds;
}

void SeedBlankBaseline(IncrementalTrainer* trainer) {
  const std::vector<ExecutedQuery> empty;
  trainer->SeedAndTrain(empty);
}

/// Replays `<root>/<tenant>`'s log (TenantManager layout: log name
/// "<base>@<tenant>") into a fresh trainer and proves it byte-identical to
/// a never-crashed oracle fed the same durable prefix of that tenant's
/// stream. Returns rows recovered.
uint64_t VerifyTenantRecoveryMatchesOracle(const std::string& root,
                                           const std::string& tenant,
                                           int salt) {
  const std::string name = "crash@" + tenant;
  IncrementalTrainer recovered(TinyOptions(), RefitPolicy{}, nullptr,
                               TightBounds());
  SeedBlankBaseline(&recovered);
  RecoveryStats stats;
  EXPECT_TRUE(
      recovered.EnableDurability(root + "/" + tenant, name, {}, &stats));
  const uint64_t rows = stats.rows_recovered;

  IncrementalTrainer oracle(TinyOptions(), RefitPolicy{}, nullptr,
                            TightBounds());
  SeedBlankBaseline(&oracle);
  for (uint64_t i = 0; i < rows; ++i) {
    oracle.Append(OpAt(salt, i), ResourceAt(i), RowAt(salt, i),
                  LabelAt(salt, i));
  }

  if (rows == 0) return 0;
  const auto refit_recovered = recovered.RefitAll();
  const auto refit_oracle = oracle.RefitAll();
  EXPECT_TRUE(refit_recovered);
  EXPECT_TRUE(refit_oracle);
  if (refit_recovered && refit_oracle) {
    EXPECT_EQ(refit_recovered.estimator->Serialize(),
              refit_oracle.estimator->Serialize())
        << "tenant " << tenant
        << " recovery diverged from its never-crashed oracle at " << rows
        << " rows";
  }
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      const OpType o = static_cast<OpType>(op);
      const Resource res = static_cast<Resource>(r);
      const auto a = recovered.LogStats(o, res);
      const auto b = oracle.LogStats(o, res);
      EXPECT_EQ(a.rows, b.rows) << tenant;
      EXPECT_EQ(a.window, b.window) << tenant;
      EXPECT_EQ(a.reservoir, b.reservoir) << tenant;
    }
  }
  return rows;
}

TEST(TenantCrashRecoveryTest, SigkillMidAppendRecoversBothTenantsExactly) {
  const std::string root = FreshDir("resest_tenant_crash");
  constexpr uint64_t kRows = 300;

  // Child: interleaved appends to both tenants' WALs; beta's WAL carries
  // the fault hook and SIGKILLs the process mid-append (a torn record on
  // beta's disk while alpha is mid-stream too).
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    IncrementalTrainer alpha(TinyOptions(), RefitPolicy{}, nullptr,
                             TightBounds());
    IncrementalTrainer beta(TinyOptions(), RefitPolicy{}, nullptr,
                            TightBounds());
    SeedBlankBaseline(&alpha);
    SeedBlankBaseline(&beta);
    WalOptions alpha_options;
    alpha_options.segment_bytes = 16 * 1024;
    WalOptions beta_options = alpha_options;
    beta_options.fault_hook = [](const WalFaultContext& ctx) {
      if (ctx.op == WalFaultOp::kWrite && !ctx.is_header &&
          ctx.call_index == 210) {
        return WalFaultAction::kShortWriteThenCrash;
      }
      return WalFaultAction::kProceed;
    };
    if (!alpha.EnableDurability(root + "/alpha", "crash@alpha",
                                alpha_options)) {
      _exit(43);
    }
    if (!beta.EnableDurability(root + "/beta", "crash@beta", beta_options)) {
      _exit(43);
    }
    for (uint64_t i = 0; i < kRows; ++i) {
      alpha.Append(OpAt(1, i), ResourceAt(i), RowAt(1, i), LabelAt(1, i));
      beta.Append(OpAt(2, i), ResourceAt(i), RowAt(2, i), LabelAt(2, i));
    }
    _exit(42);  // crash point never reached — the parent fails on this
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally instead of crashing at the injected point";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Each tenant recovers independently, byte-identical to its own oracle.
  const uint64_t alpha_rows =
      VerifyTenantRecoveryMatchesOracle(root, "alpha", 1);
  const uint64_t beta_rows =
      VerifyTenantRecoveryMatchesOracle(root, "beta", 2);
  // Beta died on a torn record; alpha was one append ahead and fully
  // durable up to the crash instant. Neither stream completed.
  EXPECT_GT(alpha_rows, 0u);
  EXPECT_GT(beta_rows, 0u);
  EXPECT_LT(alpha_rows, kRows);
  EXPECT_LT(beta_rows, kRows);
  EXPECT_GE(alpha_rows, beta_rows);

  // The TenantManager recovery path (AddTenant with a data_dir) replays
  // the same directories and reports the same durable row counts.
  ThreadPool pool(2);
  ModelRegistry registry;
  TenantOptions options;
  options.service.model_name = "crash";
  options.enable_coalescing = false;
  options.data_dir = root;
  options.train = TinyOptions();
  options.log_bounds = TightBounds();
  TenantManager manager(&registry, &pool, options);
  std::string error;
  RecoveryStats alpha_recovery;
  RecoveryStats beta_recovery;
  ASSERT_NE(manager.AddTenant("alpha", &error, &alpha_recovery), nullptr)
      << error;
  ASSERT_NE(manager.AddTenant("beta", &error, &beta_recovery), nullptr)
      << error;
  EXPECT_EQ(alpha_recovery.rows_recovered, alpha_rows);
  EXPECT_EQ(beta_recovery.rows_recovered, beta_rows);
  std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Concurrent two-tenant traffic (a TSan target: the CI tsan job runs this
// binary). Coalesced submissions, direct estimates, observe appends and
// heartbeat scrapes race across tenants; every callback must fire exactly
// once and per-tenant counters must add up.
// ---------------------------------------------------------------------------

TEST_F(TenantTest, ConcurrentTwoTenantTrafficIsRaceFreeAndAccountedPerTenant) {
  ThreadPool pool(4);
  ModelRegistry registry;
  TenantOptions options;
  options.service.model_name = "m";
  options.coalescer.window_us = 50;
  options.coalescer.max_rows = 64;
  TenantManager manager(&registry, &pool, options);
  ASSERT_NE(manager.AddTenant(kDefaultTenant), nullptr);
  ASSERT_NE(manager.AddTenant("alpha", nullptr), nullptr);
  ASSERT_NE(manager.AddTenant("beta", nullptr), nullptr);
  ASSERT_GT(manager.PublishToAll(SharedEstimator()), 0u);

  constexpr int kClientsPerTenant = 2;
  constexpr int kRoundsPerClient = 40;
  constexpr int kRowsPerRound = 4;
  const char* tenant_ids[] = {"alpha", "beta"};

  std::atomic<int> responses{0};
  std::atomic<int> result_failures{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    for (int c = 0; c < kClientsPerTenant; ++c) {
      clients.emplace_back([&, t, c]() {
        TenantManager::Tenant* tenant = manager.Resolve(tenant_ids[t]);
        for (int round = 0; round < kRoundsPerClient; ++round) {
          SubmitOptions submit;
          submit.tenant = tenant->id;
          submit.priority =
              round % 3 == 0 ? TaskPriority::kUrgent : TaskPriority::kNormal;
          tenant->coalescer->Submit(
              DistinctRequests(kRowsPerRound, t * 100 + c * 10 + round % 7),
              submit, [&](std::vector<EstimateResult> results) {
                for (const auto& r : results) {
                  if (!r.ok()) result_failures.fetch_add(1);
                }
                responses.fetch_add(1);
                done_cv.notify_one();
              });
        }
      });
    }
  }
  // Heartbeat + admin scrapes race with the traffic (the server does this
  // from the event loop's sweep).
  std::atomic<bool> stop_scraping{false};
  std::thread scraper([&]() {
    while (!stop_scraping.load()) {
      manager.Heartbeat();
      const auto snapshots = manager.stats();
      if (snapshots.size() != 3) result_failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& t : clients) t.join();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait_for(lock, std::chrono::seconds(60), [&]() {
      return responses.load() == 2 * kClientsPerTenant * kRoundsPerClient;
    });
  }
  stop_scraping.store(true);
  scraper.join();

  EXPECT_EQ(responses.load(), 2 * kClientsPerTenant * kRoundsPerClient);
  EXPECT_EQ(result_failures.load(), 0);
  // Per-tenant accounting: each tenant served exactly its own rows; the
  // default tenant saw none of them.
  const uint64_t expected_rows = static_cast<uint64_t>(kClientsPerTenant) *
                                 kRoundsPerClient * kRowsPerRound;
  EXPECT_EQ(manager.Resolve("alpha")->service->stats().requests,
            expected_rows);
  EXPECT_EQ(manager.Resolve("beta")->service->stats().requests,
            expected_rows);
  EXPECT_EQ(manager.Resolve(kDefaultTenant)->service->stats().requests, 0u);
}

}  // namespace
}  // namespace resest
