// Tests for the cross-request operator-estimate cache: the EstimateCache
// container itself (counters, LRU eviction, version-keyed entries) and its
// integration into EstimationService (bit-identical hits, invalidation when
// a publish hot-swaps the model mid-stream).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/thread_pool.h"
#include "src/serving/estimate_cache.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

// ---------------------------------------------------------------------------
// FeatureVector hashing / equality (the cache's key primitives)
// ---------------------------------------------------------------------------

TEST(FeatureVectorHashTest, EqualVectorsHashEqual) {
  FeatureVector a{};
  a.fill(0.0);
  a[0] = 1.5;
  a[3] = -2.25;
  FeatureVector b = a;
  EXPECT_TRUE(FeatureVectorHashEqual(a, b));
  EXPECT_EQ(HashFeatureVector(a), HashFeatureVector(b));
}

TEST(FeatureVectorHashTest, DifferentVectorsHashDifferently) {
  FeatureVector a{};
  a.fill(0.0);
  FeatureVector b = a;
  b[5] = 1.0;
  EXPECT_FALSE(FeatureVectorHashEqual(a, b));
  EXPECT_NE(HashFeatureVector(a), HashFeatureVector(b));
}

TEST(FeatureVectorHashTest, BitwiseSemanticsForZeroAndNan) {
  FeatureVector pos{};
  pos.fill(0.0);
  FeatureVector neg = pos;
  neg[0] = -0.0;
  // -0.0 == +0.0 under operator==, but the bitwise notion keeps equality
  // consistent with the bit-pattern hash: they are distinct keys.
  EXPECT_FALSE(FeatureVectorHashEqual(pos, neg));
  EXPECT_NE(HashFeatureVector(pos), HashFeatureVector(neg));
  // NaN never compares == to itself, but identical NaN bits are one key.
  FeatureVector nan_a{};
  nan_a.fill(0.0);
  nan_a[1] = std::nan("");
  FeatureVector nan_b = nan_a;
  EXPECT_TRUE(FeatureVectorHashEqual(nan_a, nan_b));
  EXPECT_EQ(HashFeatureVector(nan_a), HashFeatureVector(nan_b));
}

// ---------------------------------------------------------------------------
// EstimateCache container semantics
// ---------------------------------------------------------------------------

EstimateCache::Key MakeKey(uint64_t version, double distinguishing_value) {
  EstimateCache::Key key;
  key.model_version = version;
  key.op = OpType::kHashJoin;
  key.resource = Resource::kCpu;
  key.features.fill(0.0);
  key.features[0] = distinguishing_value;
  return key;
}

TEST(EstimateCacheTest, MissInsertHitCounters) {
  EstimateCache cache;
  double value = 0.0;
  EXPECT_FALSE(cache.Lookup(MakeKey(1, 10.0), &value));
  cache.Insert(MakeKey(1, 10.0), 42.5);
  ASSERT_TRUE(cache.Lookup(MakeKey(1, 10.0), &value));
  EXPECT_EQ(value, 42.5);

  const EstimateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(EstimateCacheTest, VersionIsPartOfTheKey) {
  EstimateCache cache;
  cache.Insert(MakeKey(1, 10.0), 1.0);
  double value = 0.0;
  // Same (op, resource, features) under a new model version: a miss.
  EXPECT_FALSE(cache.Lookup(MakeKey(2, 10.0), &value));
  cache.Insert(MakeKey(2, 10.0), 2.0);
  ASSERT_TRUE(cache.Lookup(MakeKey(1, 10.0), &value));
  EXPECT_EQ(value, 1.0);
  ASSERT_TRUE(cache.Lookup(MakeKey(2, 10.0), &value));
  EXPECT_EQ(value, 2.0);
}

TEST(EstimateCacheTest, EvictsLeastRecentlyUsedUnderBound) {
  EstimateCacheOptions options;
  options.capacity = 3;
  options.shards = 1;  // single shard so the bound is exact
  EstimateCache cache(options);
  cache.Insert(MakeKey(1, 1.0), 1.0);
  cache.Insert(MakeKey(1, 2.0), 2.0);
  cache.Insert(MakeKey(1, 3.0), 3.0);

  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(MakeKey(1, 1.0), &value));  // promote key 1

  cache.Insert(MakeKey(1, 4.0), 4.0);  // bound exceeded: evict LRU (key 2)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_TRUE(cache.Lookup(MakeKey(1, 1.0), &value));
  EXPECT_FALSE(cache.Lookup(MakeKey(1, 2.0), &value));
  EXPECT_TRUE(cache.Lookup(MakeKey(1, 3.0), &value));
  EXPECT_TRUE(cache.Lookup(MakeKey(1, 4.0), &value));
}

TEST(EstimateCacheTest, SingleShardBreakdownMatchesAggregate) {
  EstimateCacheOptions options;
  options.shards = 1;
  EstimateCache cache(options);
  double value = 0.0;
  cache.Lookup(MakeKey(1, 1.0), &value);  // miss
  cache.Insert(MakeKey(1, 1.0), 1.0);
  cache.Lookup(MakeKey(1, 1.0), &value);  // hit

  const EstimateCacheStats stats = cache.stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].hits, stats.hits);
  EXPECT_EQ(stats.shards[0].misses, stats.misses);
  EXPECT_EQ(stats.shards[0].insertions, stats.insertions);
  EXPECT_EQ(stats.shards[0].evictions, stats.evictions);
  EXPECT_EQ(stats.shards[0].entries, stats.entries);
  EXPECT_DOUBLE_EQ(stats.shards[0].HitRate(), stats.HitRate());
}

TEST(EstimateCacheTest, PerShardCountersSumToAggregate) {
  EstimateCacheOptions options;
  options.shards = 4;
  EstimateCache cache(options);
  double value = 0.0;
  for (int i = 0; i < 64; ++i) {
    const auto key = MakeKey(1, static_cast<double>(i));
    cache.Lookup(key, &value);  // miss
    cache.Insert(key, static_cast<double>(i));
    cache.Lookup(key, &value);  // hit
  }

  const EstimateCacheStats stats = cache.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  size_t entries = 0, populated_shards = 0;
  for (const EstimateCacheShardStats& shard : stats.shards) {
    hits += shard.hits;
    misses += shard.misses;
    insertions += shard.insertions;
    evictions += shard.evictions;
    entries += shard.entries;
    if (shard.entries > 0) ++populated_shards;
  }
  EXPECT_EQ(hits, stats.hits);
  EXPECT_EQ(misses, stats.misses);
  EXPECT_EQ(insertions, stats.insertions);
  EXPECT_EQ(evictions, stats.evictions);
  EXPECT_EQ(entries, stats.entries);
  // 64 distinct feature vectors hash across shards: more than one shard
  // sees traffic (the point of the breakdown is spotting when they don't).
  EXPECT_GT(populated_shards, 1u);
}

TEST(EstimateCacheTest, SkewedKeyTrafficLandsOnOneShard) {
  EstimateCacheOptions options;
  options.shards = 8;
  EstimateCache cache(options);
  // A single hot key — the skewed-feature-distribution scenario the
  // per-shard counters exist to expose.
  cache.Insert(MakeKey(1, 42.0), 7.0);
  double value = 0.0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache.Lookup(MakeKey(1, 42.0), &value));
  }

  const EstimateCacheStats stats = cache.stats();
  ASSERT_EQ(stats.shards.size(), 8u);
  size_t shards_with_hits = 0;
  uint64_t max_shard_hits = 0;
  for (const EstimateCacheShardStats& shard : stats.shards) {
    if (shard.hits > 0) ++shards_with_hits;
    max_shard_hits = std::max(max_shard_hits, shard.hits);
  }
  EXPECT_EQ(shards_with_hits, 1u);
  EXPECT_EQ(max_shard_hits, 100u);
  EXPECT_EQ(stats.hits, 100u);
}

EstimateCache::Key MakeSlotKey(OpType op, Resource resource, double value) {
  EstimateCache::Key key;
  key.model_version = 1;
  key.op = op;
  key.resource = resource;
  key.features.fill(0.0);
  key.features[0] = value;
  return key;
}

TEST(EstimateCacheTest, EvictOperatorsDropsOnlyMatchingSlots) {
  EstimateCacheOptions options;
  options.shards = 4;
  EstimateCache cache(options);
  // A mixed population across three slots; the kSort/kCpu slot also gets
  // entries under two versions (scoped eviction must drop all versions of
  // a refitted slot — every one of them is dead after the refit).
  for (int i = 0; i < 16; ++i) {
    cache.Insert(MakeSlotKey(OpType::kSort, Resource::kCpu, i), 1.0);
    cache.Insert(MakeSlotKey(OpType::kSort, Resource::kIo, i), 2.0);
    cache.Insert(MakeSlotKey(OpType::kHashJoin, Resource::kCpu, i), 3.0);
  }
  auto old_version = MakeSlotKey(OpType::kSort, Resource::kCpu, 99.0);
  old_version.model_version = 7;
  cache.Insert(old_version, 4.0);
  ASSERT_EQ(cache.stats().entries, 49u);

  cache.EvictOperators({{OpType::kSort, Resource::kCpu}});

  const EstimateCacheStats stats = cache.stats();
  // Exactly the 17 kSort/kCpu entries dropped, accounted as scoped
  // invalidations — LRU eviction counters untouched.
  EXPECT_EQ(stats.entries, 32u);
  EXPECT_EQ(stats.invalidated, 17u);
  EXPECT_EQ(stats.evictions, 0u);
  uint64_t shard_invalidated = 0;
  size_t shard_entries = 0;
  for (const EstimateCacheShardStats& shard : stats.shards) {
    shard_invalidated += shard.invalidated;
    shard_entries += shard.entries;
  }
  EXPECT_EQ(shard_invalidated, stats.invalidated);
  EXPECT_EQ(shard_entries, stats.entries);

  // The untouched slots still hit; the refitted slot misses.
  double value = 0.0;
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(
        cache.Lookup(MakeSlotKey(OpType::kSort, Resource::kCpu, i), &value));
    ASSERT_TRUE(
        cache.Lookup(MakeSlotKey(OpType::kSort, Resource::kIo, i), &value));
    EXPECT_EQ(value, 2.0);
    ASSERT_TRUE(cache.Lookup(MakeSlotKey(OpType::kHashJoin, Resource::kCpu, i),
                             &value));
    EXPECT_EQ(value, 3.0);
  }
  EXPECT_FALSE(cache.Lookup(old_version, &value));

  // An empty scope is a no-op.
  cache.EvictOperators({});
  EXPECT_EQ(cache.stats().entries, 32u);
  EXPECT_EQ(cache.stats().invalidated, 17u);
}

TEST(EstimateCacheTest, EvictOperatorsVisitsOnlyMatchingEntries) {
  // The regression this pins: EvictOperators used to walk the entire LRU of
  // every shard under the shard mutex — O(entries x ops) with all lookups
  // blocked — even when the refitted slots held a handful of entries. The
  // per-slot index must touch exactly the matching entries, so a wide
  // population of innocent bystanders costs nothing.
  EstimateCacheOptions options;
  options.capacity = 64 * 1024;
  options.shards = 4;
  EstimateCache cache(options);
  constexpr int kBystanders = 20000;
  for (int i = 0; i < kBystanders; ++i) {
    cache.Insert(MakeSlotKey(OpType::kHashJoin, Resource::kCpu, i), 1.0);
  }
  for (int i = 0; i < 8; ++i) {
    cache.Insert(MakeSlotKey(OpType::kSort, Resource::kIo, i), 2.0);
  }

  // A wide delta: every slot except the bystanders' is refitted.
  std::vector<ModelSlotId> wide;
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      if (static_cast<OpType>(op) == OpType::kHashJoin &&
          static_cast<Resource>(r) == Resource::kCpu) {
        continue;
      }
      wide.emplace_back(static_cast<OpType>(op), static_cast<Resource>(r));
    }
  }
  cache.EvictOperators(wide);

  const EstimateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidated, 8u);
  // The bound: only matching entries were examined under the shard mutex.
  EXPECT_EQ(stats.invalidate_visited, stats.invalidated);
  EXPECT_EQ(stats.entries, static_cast<size_t>(kBystanders));
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(MakeSlotKey(OpType::kHashJoin, Resource::kCpu, 17),
                           &value));
  EXPECT_EQ(value, 1.0);
}

TEST(EstimateCacheTest, LookupsStayLiveDuringRepeatedWideEviction) {
  // Concurrent lookups against a well-populated cache while another thread
  // hammers wide EvictOperators sweeps: lookups must stay correct and the
  // eviction work must stay proportional to what it drops (visited ==
  // invalidated), not to the cache population it scans past.
  EstimateCacheOptions options;
  options.capacity = 64 * 1024;
  options.shards = 4;
  EstimateCache cache(options);
  constexpr int kHotKeys = 4096;
  for (int i = 0; i < kHotKeys; ++i) {
    cache.Insert(MakeSlotKey(OpType::kHashJoin, Resource::kCpu, i), 1.0);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::thread reader([&]() {
    double value = 0.0;
    for (int round = 0; round < 200; ++round) {
      for (int i = 0; i < kHotKeys; i += 64) {
        if (!cache.Lookup(MakeSlotKey(OpType::kHashJoin, Resource::kCpu, i),
                          &value) ||
            value != 1.0) {
          wrong.fetch_add(1);
        }
      }
    }
    stop.store(true);
  });
  std::thread evictor([&]() {
    // Refit churn on slots the reader never touches, plus fresh insertions
    // so the swept slots are never empty.
    const std::vector<ModelSlotId> swept = {
        {OpType::kSort, Resource::kCpu},
        {OpType::kSort, Resource::kIo},
        {OpType::kTableScan, Resource::kCpu},
    };
    int serial = 0;
    while (!stop.load()) {
      for (const auto& [op, resource] : swept) {
        cache.Insert(MakeSlotKey(op, resource, ++serial), 3.0);
      }
      cache.EvictOperators(swept);
    }
  });
  reader.join();
  evictor.join();

  EXPECT_EQ(wrong.load(), 0);
  const EstimateCacheStats stats = cache.stats();
  EXPECT_GT(stats.invalidated, 0u);
  EXPECT_EQ(stats.invalidate_visited, stats.invalidated);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(200 * (kHotKeys / 64)));
}

TEST(EstimateCacheTest, ClearDropsEntriesKeepsCounters) {
  EstimateCache cache;
  cache.Insert(MakeKey(1, 1.0), 1.0);
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(MakeKey(1, 1.0), &value));
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);  // monotonic counters survive Clear
  EXPECT_FALSE(cache.Lookup(MakeKey(1, 1.0), &value));
}

// ---------------------------------------------------------------------------
// Service integration: one small trained model pair (the second model is
// deliberately different so a hot-swap visibly changes estimates).
// ---------------------------------------------------------------------------

class ServiceCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 0.5, 1.0, 42).release();
    Rng rng(7);
    auto queries = GenerateTpchWorkload(50, &rng, db_);
    workload_ = new std::vector<ExecutedQuery>(RunWorkload(db_, queries));
    TrainOptions options;
    options.mart.num_trees = 30;
    model_a_ = new ResourceEstimator(
        ResourceEstimator::Train(*workload_, options));
    options.mart.num_trees = 12;  // different model => different estimates
    model_b_ = new ResourceEstimator(
        ResourceEstimator::Train(*workload_, options));
  }
  static void TearDownTestSuite() {
    delete model_b_;
    model_b_ = nullptr;
    delete model_a_;
    model_a_ = nullptr;
    delete workload_;
    workload_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static std::shared_ptr<const ResourceEstimator> Shared(
      const ResourceEstimator* est) {
    return std::shared_ptr<const ResourceEstimator>(est, [](const auto*) {});
  }

  static std::vector<EstimateRequest> Requests(Resource resource) {
    std::vector<EstimateRequest> requests;
    for (const auto& eq : *workload_) {
      requests.push_back({&eq.plan, eq.database, resource});
    }
    return requests;
  }

  static Database* db_;
  static std::vector<ExecutedQuery>* workload_;
  static ResourceEstimator* model_a_;
  static ResourceEstimator* model_b_;
};

Database* ServiceCacheTest::db_ = nullptr;
std::vector<ExecutedQuery>* ServiceCacheTest::workload_ = nullptr;
ResourceEstimator* ServiceCacheTest::model_a_ = nullptr;
ResourceEstimator* ServiceCacheTest::model_b_ = nullptr;

TEST_F(ServiceCacheTest, HitsAreBitIdenticalToMissesAndSerial) {
  ModelRegistry registry;
  registry.Publish("default", Shared(model_a_));
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = Requests(Resource::kCpu);
  const auto cold = service.EstimateBatch(requests);  // all misses
  const ServiceStats after_cold = service.stats();
  EXPECT_GT(after_cold.cache_misses, 0u);

  const auto warm = service.EstimateBatch(requests);  // all hits
  const ServiceStats after_warm = service.stats();
  EXPECT_GT(after_warm.cache_hits, after_cold.cache_hits);
  // The repeat pass is served entirely from the cache: no new misses.
  EXPECT_EQ(after_warm.cache_misses, after_cold.cache_misses);

  ASSERT_EQ(cold.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(cold[i].ok());
    ASSERT_TRUE(warm[i].ok());
    const double serial = model_a_->EstimateQuery(
        *requests[i].plan, *requests[i].database, Resource::kCpu);
    EXPECT_EQ(cold[i].value, serial) << "cold request " << i;
    EXPECT_EQ(warm[i].value, serial) << "warm request " << i;
  }
}

TEST_F(ServiceCacheTest, DisabledCacheMatchesEnabledCache) {
  ModelRegistry registry;
  registry.Publish("default", Shared(model_a_));
  ThreadPool pool(4);
  ServiceOptions no_cache;
  no_cache.enable_cache = false;
  EstimationService cached(&registry, &pool);
  EstimationService uncached(&registry, &pool, no_cache);

  const auto requests = Requests(Resource::kIo);
  const auto with = cached.EstimateBatch(requests);
  const auto without = uncached.EstimateBatch(requests);
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].value, without[i].value);
  }
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
  EXPECT_EQ(uncached.stats().cache_misses, 0u);
}

TEST_F(ServiceCacheTest, EvictionUnderTinyBoundStaysCorrect) {
  ModelRegistry registry;
  registry.Publish("default", Shared(model_a_));
  ThreadPool pool(2);
  ServiceOptions options;
  options.cache_capacity = 8;  // far fewer slots than distinct operators
  options.cache_shards = 1;
  EstimationService service(&registry, &pool, options);

  const auto requests = Requests(Resource::kCpu);
  service.EstimateBatch(requests);
  service.EstimateBatch(requests);
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LE(stats.cache_entries, 8u);

  // Thrashing changes performance, never values.
  const auto results = service.EstimateBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value,
              model_a_->EstimateQuery(*requests[i].plan, *requests[i].database,
                                      Resource::kCpu));
  }
}

TEST_F(ServiceCacheTest, PublishInvalidatesMidStream) {
  ModelRegistry registry;
  const uint64_t v1 = registry.Publish("default", Shared(model_a_));
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = Requests(Resource::kCpu);
  const auto before = service.EstimateBatch(requests);
  ASSERT_TRUE(before[0].ok());
  EXPECT_EQ(before[0].model_version, v1);

  // Hot-swap mid-stream: same requests must now be served by model B —
  // version-keyed entries from model A can never satisfy them.
  const uint64_t v2 = registry.Publish("default", Shared(model_b_));
  const ServiceStats at_swap = service.stats();
  const auto after = service.EstimateBatch(requests);
  const ServiceStats post = service.stats();
  EXPECT_GT(post.cache_misses, at_swap.cache_misses);

  bool any_changed = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(after[i].ok());
    EXPECT_EQ(after[i].model_version, v2);
    const double serial_b = model_b_->EstimateQuery(
        *requests[i].plan, *requests[i].database, Resource::kCpu);
    EXPECT_EQ(after[i].value, serial_b) << "request " << i;
    if (after[i].value != before[i].value) any_changed = true;
  }
  // The two models genuinely differ, so a stale cache would be visible.
  EXPECT_TRUE(any_changed);

  // Roll back to model A: still correct (fresh misses, then A's values).
  ASSERT_TRUE(registry.Activate("default", v1));
  const auto rolled_back = service.EstimateBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(rolled_back[i].ok());
    EXPECT_EQ(rolled_back[i].value, before[i].value);
  }
}

TEST_F(ServiceCacheTest, PerShardBreakdownReachableThroughTheService) {
  ModelRegistry registry;
  registry.Publish("default", Shared(model_a_));
  ThreadPool pool(2);
  ServiceOptions options;
  options.cache_shards = 4;
  EstimationService service(&registry, &pool, options);

  service.EstimateBatch(Requests(Resource::kCpu));
  service.EstimateBatch(Requests(Resource::kCpu));

  // The live serving cache's shard breakdown (skew detection) must be
  // visible to operators, not just to unit tests holding a bare cache.
  const EstimateCacheStats cache_stats = service.cache_stats();
  ASSERT_EQ(cache_stats.shards.size(), 4u);
  uint64_t shard_hits = 0, shard_misses = 0;
  size_t shard_entries = 0;
  for (const EstimateCacheShardStats& shard : cache_stats.shards) {
    shard_hits += shard.hits;
    shard_misses += shard.misses;
    shard_entries += shard.entries;
  }
  EXPECT_EQ(shard_hits, cache_stats.hits);
  EXPECT_EQ(shard_misses, cache_stats.misses);
  EXPECT_EQ(shard_entries, cache_stats.entries);
  EXPECT_GT(cache_stats.hits, 0u);

  // And it agrees with the scalar totals ServiceStats reports.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, cache_stats.hits);
  EXPECT_EQ(stats.cache_misses, cache_stats.misses);
  EXPECT_EQ(stats.cache_entries, cache_stats.entries);

  // Disabled cache: empty breakdown, not a crash.
  ServiceOptions no_cache;
  no_cache.enable_cache = false;
  EstimationService uncached(&registry, &pool, no_cache);
  EXPECT_TRUE(uncached.cache_stats().shards.empty());
  EXPECT_EQ(uncached.cache_stats().hits, 0u);
}

TEST_F(ServiceCacheTest, ConcurrentBatchesSharingTheCacheStayCorrect) {
  ModelRegistry registry;
  registry.Publish("default", Shared(model_a_));
  ThreadPool pool(4);
  EstimationService service(&registry, &pool);

  const auto requests = Requests(Resource::kCpu);
  std::vector<double> serial(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = model_a_->EstimateQuery(*requests[i].plan,
                                        *requests[i].database, Resource::kCpu);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&]() {
      for (int round = 0; round < 3; ++round) {
        const auto results = service.EstimateBatch(requests);
        for (size_t i = 0; i < results.size(); ++i) {
          if (!results[i].ok() || results[i].value != serial[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(service.stats().cache_hits, 0u);
}

}  // namespace
}  // namespace resest
