// Tests for src/server: the JSON round-trip layer, the wire-stable status
// taxonomy, the Prometheus exposition, the HTTP server's parse/limit/drain
// contracts, and the loopback integration of resest_server's front end —
// including the core promise that estimates served over HTTP are
// bit-identical to calling EstimationService::EstimateBatch directly, and
// that SIGTERM drains the real binary with zero dropped responses.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "gtest/gtest.h"
#include "src/common/shutdown.h"
#include "src/common/thread_pool.h"
#include "src/server/http_client.h"
#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/prometheus_writer.h"
#include "src/server/serving_frontend.h"
#include "src/server/wire_api.h"
#include "src/serving/batch_coalescer.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/storage/recovery.h"
#include "src/storage/wal.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(text, &v, &error)) << error;
  return v;
}

TEST(JsonTest, ParsesPrimitivesAndContainers) {
  const JsonValue v = MustParse(
      " {\"a\": [1, -2.5e2, true, false, null], \"b\": {\"c\": \"hi\"}} ");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 5u);
  EXPECT_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_EQ(a->items()[1].as_number(), -250.0);
  EXPECT_TRUE(a->items()[2].as_bool());
  EXPECT_FALSE(a->items()[3].as_bool());
  EXPECT_TRUE(a->items()[4].is_null());
  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_object());
  EXPECT_EQ(b->Find("c")->as_string(), "hi");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, DuplicateKeysResolveToLastOccurrence) {
  const JsonValue v = MustParse("{\"k\": 1, \"k\": 2}");
  EXPECT_EQ(v.Find("k")->as_number(), 2.0);
}

TEST(JsonTest, DecodesEscapesIncludingSurrogatePairs) {
  const JsonValue v =
      MustParse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\\ud83d\\ude00\"");
  // \u0041 = 'A', \u00e9 = é (2 UTF-8 bytes), surrogate pair = 😀 (4 bytes).
  EXPECT_EQ(v.as_string(), std::string("a\"b\\c\n\tA\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST(JsonTest, RejectsMalformedInputWithPositionTaggedError) {
  JsonValue v;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "01", "1.", "\"\\x\"",
        "\"unterminated", "{\"a\":1} trailing", "[1 2]", "nan"}) {
    EXPECT_FALSE(JsonValue::Parse(bad, &v, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, RejectsExcessiveNestingDepth) {
  std::string deep(kMaxJsonDepth + 1, '[');
  deep += std::string(kMaxJsonDepth + 1, ']');
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep, &v, &error));
  // One level under the cap parses.
  std::string ok(kMaxJsonDepth, '[');
  ok += std::string(kMaxJsonDepth, ']');
  EXPECT_TRUE(JsonValue::Parse(ok, &v, &error)) << error;
}

TEST(JsonTest, NumberFormattingRoundTripsExactBits) {
  const double values[] = {0.0,          -0.0,     1.0 / 3.0,
                           1e-308,       1.7e308,  123456.789,
                           -0.1,         2.5e-17,  3.141592653589793};
  for (double value : values) {
    std::string text;
    AppendJsonNumber(value, &text);
    const JsonValue parsed = MustParse(text);
    ASSERT_TRUE(parsed.is_number()) << text;
    const double back = parsed.as_number();
    EXPECT_EQ(std::memcmp(&value, &back, sizeof(double)), 0)
        << text << " -> " << back;
  }
  // Non-finite values are unrepresentable and become null.
  std::string text;
  AppendJsonNumber(std::numeric_limits<double>::infinity(), &text);
  EXPECT_EQ(text, "null");
}

TEST(JsonTest, StringEscapingRoundTrips) {
  const std::string original = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  std::string text;
  AppendJsonString(original, &text);
  EXPECT_EQ(MustParse(text).as_string(), original);
}

// ---------------------------------------------------------------------------
// EstimateStatus wire taxonomy
// ---------------------------------------------------------------------------

static_assert(kNumEstimateStatuses == 6,
              "new EstimateStatus enumerators need name + HTTP code table "
              "entries and doc updates (docs/wire_api.md)");

TEST(EstimateStatusTest, EveryEnumeratorRoundTripsThroughItsName) {
  for (size_t i = 0; i < kNumEstimateStatuses; ++i) {
    const EstimateStatus s = static_cast<EstimateStatus>(i);
    const std::string name = EstimateStatusName(s);
    EXPECT_NE(name, "UNKNOWN") << i;
    EstimateStatus back = EstimateStatus::kNumEstimateStatuses;
    ASSERT_TRUE(ParseEstimateStatus(name, &back)) << name;
    EXPECT_EQ(back, s) << name;
  }
}

TEST(EstimateStatusTest, NamesAreUnique) {
  for (size_t i = 0; i < kNumEstimateStatuses; ++i) {
    for (size_t j = i + 1; j < kNumEstimateStatuses; ++j) {
      EXPECT_STRNE(EstimateStatusName(static_cast<EstimateStatus>(i)),
                   EstimateStatusName(static_cast<EstimateStatus>(j)));
    }
  }
}

TEST(EstimateStatusTest, HttpCodeTableIsStable) {
  EXPECT_EQ(EstimateStatusHttpCode(EstimateStatus::kOk), 200);
  EXPECT_EQ(EstimateStatusHttpCode(EstimateStatus::kModelNotFound), 503);
  EXPECT_EQ(EstimateStatusHttpCode(EstimateStatus::kInvalidRequest), 400);
  EXPECT_EQ(EstimateStatusHttpCode(EstimateStatus::kBatchTooLarge), 413);
  EXPECT_EQ(EstimateStatusHttpCode(EstimateStatus::kInternalError), 500);
  EXPECT_EQ(EstimateStatusHttpCode(EstimateStatus::kDeadlineExceeded), 504);
  // Out-of-range values degrade to 500, never to a bogus code.
  EXPECT_EQ(EstimateStatusHttpCode(EstimateStatus::kNumEstimateStatuses), 500);
}

TEST(EstimateStatusTest, RejectsUnknownNames) {
  EstimateStatus s;
  EXPECT_FALSE(ParseEstimateStatus("", &s));
  EXPECT_FALSE(ParseEstimateStatus("ok", &s));  // names are case-sensitive
  EXPECT_FALSE(ParseEstimateStatus("UNKNOWN", &s));
}

// ---------------------------------------------------------------------------
// Enum name parsers used by the wire API
// ---------------------------------------------------------------------------

TEST(WireNamesTest, OpTypeRoundTripsAndRejectsUnknown) {
  for (int i = 0; i < kNumOpTypes; ++i) {
    const OpType op = static_cast<OpType>(i);
    OpType back;
    ASSERT_TRUE(ParseOpType(OpTypeName(op), &back)) << OpTypeName(op);
    EXPECT_EQ(back, op);
  }
  OpType op;
  EXPECT_FALSE(ParseOpType("tablescan", &op));  // case-sensitive
  EXPECT_FALSE(ParseOpType("Unknown", &op));
}

TEST(WireNamesTest, ResourceParsesCaseInsensitively) {
  Resource r;
  ASSERT_TRUE(ParseResource("CPU", &r));
  EXPECT_EQ(r, Resource::kCpu);
  ASSERT_TRUE(ParseResource("cpu", &r));
  EXPECT_EQ(r, Resource::kCpu);
  ASSERT_TRUE(ParseResource("io", &r));
  EXPECT_EQ(r, Resource::kIo);
  EXPECT_FALSE(ParseResource("disk", &r));
}

TEST(WireNamesTest, TaskPriorityRoundTrips) {
  for (size_t i = 0; i < kNumTaskPriorities; ++i) {
    const TaskPriority p = static_cast<TaskPriority>(static_cast<int>(i));
    TaskPriority back;
    ASSERT_TRUE(ParseTaskPriority(TaskPriorityName(p), &back));
    EXPECT_EQ(back, p);
  }
  TaskPriority p;
  EXPECT_FALSE(ParseTaskPriority("URGENT", &p));
}

// ---------------------------------------------------------------------------
// Prometheus writer
// ---------------------------------------------------------------------------

TEST(PrometheusWriterTest, EmitsHelpTypeAndLabeledSamples) {
  PrometheusWriter w;
  w.BeginFamily("x_total", "Help text.", "counter");
  w.Sample("x_total", {}, uint64_t{7});
  w.Sample("x_total", {{"lane", "a\"b\\c\nd"}}, uint64_t{9});
  const std::string& text = w.text();
  EXPECT_NE(text.find("# HELP x_total Help text.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE x_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("\nx_total 7\n"), std::string::npos);
  // Label values escape backslash, quote, and newline.
  EXPECT_NE(text.find("x_total{lane=\"a\\\"b\\\\c\\nd\"} 9\n"),
            std::string::npos);
}

TEST(PrometheusWriterTest, HistogramCumulatesBucketsAndAppendsInf) {
  PrometheusWriter w;
  w.BeginFamily("lat", "Latency.", "histogram");
  // Non-cumulative counts 1, 2, 0 with 5 total observations: the +Inf
  // bucket must equal the count even when the finite buckets undercount
  // (the service's last bucket absorbs overflow).
  w.Histogram("lat", {{"p", "x"}}, {0.001, 0.002, 0.004}, {1, 2, 0}, 0.25, 5);
  const std::string& text = w.text();
  EXPECT_NE(text.find("lat_bucket{p=\"x\",le=\"0.001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{p=\"x\",le=\"0.002\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{p=\"x\",le=\"0.004\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{p=\"x\",le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_sum{p=\"x\"} 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count{p=\"x\"} 5\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire API parse/format (socket-free)
// ---------------------------------------------------------------------------

FeatureVector TestFeatures(int salt) {
  FeatureVector features{};
  for (int f = 0; f < kNumFeatures; ++f) {
    features[static_cast<size_t>(f)] =
        1.0 + static_cast<double>(salt) * 3.7 + static_cast<double>(f) * 0.91;
  }
  return features;
}

std::string WireBatchBody(const std::vector<EstimateRequest>& requests,
                          const std::string& priority,
                          double deadline_ms = 0.0) {
  std::string body = "{";
  if (!priority.empty()) body += "\"priority\":\"" + priority + "\",";
  if (deadline_ms > 0.0) {
    body += "\"deadline_ms\":";
    AppendJsonNumber(deadline_ms, &body);
    body += ",";
  }
  body += "\"requests\":[";
  for (size_t i = 0; i < requests.size(); ++i) {
    if (i > 0) body += ',';
    body += "{\"op\":\"";
    body += OpTypeName(requests[i].op);
    body += "\",\"resource\":\"";
    body += ResourceName(requests[i].resource);
    body += "\",\"features\":[";
    for (int f = 0; f < kNumFeatures; ++f) {
      if (f > 0) body += ',';
      AppendJsonNumber(requests[i].features[static_cast<size_t>(f)], &body);
    }
    body += "]}";
  }
  body += "]}";
  return body;
}

TEST(WireApiTest, ParsesBatchWithPriorityAndDeadline) {
  std::vector<EstimateRequest> original;
  original.push_back(EstimateRequest::ForOperator(OpType::kHashJoin,
                                                  TestFeatures(1),
                                                  Resource::kIo));
  original.push_back(EstimateRequest::ForOperator(OpType::kTableScan,
                                                  TestFeatures(2),
                                                  Resource::kCpu));
  const JsonValue body =
      MustParse(WireBatchBody(original, "urgent", /*deadline_ms=*/1000.0));
  std::vector<EstimateRequest> requests;
  SubmitOptions options;
  std::string error;
  ASSERT_TRUE(ParseEstimateWireBatch(body, &requests, &options, &error))
      << error;
  EXPECT_EQ(options.priority, TaskPriority::kUrgent);
  EXPECT_TRUE(options.has_deadline());
  ASSERT_EQ(requests.size(), 2u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(requests[i].has_features);
    EXPECT_EQ(requests[i].op, original[i].op);
    EXPECT_EQ(requests[i].resource, original[i].resource);
    EXPECT_EQ(std::memcmp(requests[i].features.data(),
                          original[i].features.data(),
                          sizeof(FeatureVector)),
              0);
  }
}

TEST(WireApiTest, DefaultsToNormalPriorityWithoutDeadline) {
  const JsonValue body = MustParse(
      "{\"requests\":[{\"op\":\"Sort\",\"resource\":\"cpu\","
      "\"features\":[1,2]}]}");
  std::vector<EstimateRequest> requests;
  SubmitOptions options;
  std::string error;
  ASSERT_TRUE(ParseEstimateWireBatch(body, &requests, &options, &error))
      << error;
  EXPECT_EQ(options.priority, TaskPriority::kNormal);
  EXPECT_FALSE(options.has_deadline());
  ASSERT_EQ(requests.size(), 1u);
  // Omitted trailing features are zero.
  EXPECT_EQ(requests[0].features[0], 1.0);
  EXPECT_EQ(requests[0].features[1], 2.0);
  EXPECT_EQ(requests[0].features[2], 0.0);
}

TEST(WireApiTest, RejectsEachMalformedField) {
  const struct {
    const char* body;
    const char* what;
  } cases[] = {
      {"[]", "not an object"},
      {"{\"requests\": 3}", "requests not array"},
      {"{\"requests\": []}", "empty requests array"},
      {"{\"dead_line_ms\": 5, \"requests\": [{\"op\":\"Sort\","
       "\"resource\":\"CPU\",\"features\":[]}]}",
       "unknown top-level field"},
      {"{\"requests\": [{\"op\":\"Sort\",\"resource\":\"CPU\","
       "\"features\":[],\"weight\":2}]}",
       "unknown request field"},
      {"{\"priority\": \"high\", \"requests\": []}", "bad priority"},
      {"{\"deadline_ms\": -1, \"requests\": []}", "negative deadline"},
      {"{\"deadline_ms\": \"soon\", \"requests\": []}", "non-number deadline"},
      {"{\"requests\": [5]}", "non-object request"},
      {"{\"requests\": [{\"resource\":\"CPU\",\"features\":[]}]}", "no op"},
      {"{\"requests\": [{\"op\":\"NoSuchOp\",\"resource\":\"CPU\","
       "\"features\":[]}]}",
       "bad op"},
      {"{\"requests\": [{\"op\":\"Sort\",\"resource\":\"RAM\","
       "\"features\":[]}]}",
       "bad resource"},
      {"{\"requests\": [{\"op\":\"Sort\",\"resource\":\"CPU\"}]}",
       "missing features"},
      {"{\"requests\": [{\"op\":\"Sort\",\"resource\":\"CPU\","
       "\"features\":[true]}]}",
       "non-number feature"},
  };
  for (const auto& c : cases) {
    std::vector<EstimateRequest> requests;
    SubmitOptions options;
    std::string error;
    ASSERT_FALSE(ParseEstimateWireBatch(MustParse(c.body), &requests, &options,
                                        &error))
        << c.what;
    EXPECT_FALSE(error.empty()) << c.what;
  }
  // Too many features (kNumFeatures + 1 entries).
  std::string long_features = "{\"requests\":[{\"op\":\"Sort\","
                              "\"resource\":\"CPU\",\"features\":[0";
  for (int i = 0; i < kNumFeatures; ++i) long_features += ",0";
  long_features += "]}]}";
  std::vector<EstimateRequest> requests;
  SubmitOptions options;
  std::string error;
  ASSERT_FALSE(ParseEstimateWireBatch(MustParse(long_features), &requests,
                                      &options, &error));
}

TEST(WireApiTest, ResponseBodyRoundTripsStatusAndExactValueBits) {
  std::vector<EstimateResult> results(3);
  results[0].status = EstimateStatus::kOk;
  results[0].value = 1.0 / 3.0;
  results[0].model_version = 4;
  results[1].status = EstimateStatus::kDeadlineExceeded;
  results[1].value = 0.0;
  results[1].model_version = 4;
  results[2].status = EstimateStatus::kOk;
  results[2].value = 2.5e-17;
  results[2].model_version = 4;

  const JsonValue body = MustParse(FormatEstimateWireResponse(results));
  EXPECT_EQ(body.Find("model_version")->as_number(), 4.0);
  const JsonValue* parsed = body.Find("results");
  ASSERT_NE(parsed, nullptr);
  ASSERT_EQ(parsed->items().size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const JsonValue& item = parsed->items()[i];
    EstimateStatus status;
    ASSERT_TRUE(
        ParseEstimateStatus(item.Find("status")->as_string(), &status));
    EXPECT_EQ(status, results[i].status);
    const double value = item.Find("value")->as_number();
    EXPECT_EQ(std::memcmp(&value, &results[i].value, sizeof(double)), 0);
    EXPECT_EQ(item.Find("model_version")->as_number(), 4.0);
  }
}

TEST(WireApiTest, BatchHttpStatusReflectsUniformFailuresOnly) {
  EXPECT_EQ(EstimateWireHttpStatus({}), 200);
  std::vector<EstimateResult> results(2);
  EXPECT_EQ(EstimateWireHttpStatus(results), 200);  // all OK
  results[0].status = EstimateStatus::kDeadlineExceeded;
  EXPECT_EQ(EstimateWireHttpStatus(results), 200);  // partial success
  results[1].status = EstimateStatus::kDeadlineExceeded;
  EXPECT_EQ(EstimateWireHttpStatus(results), 504);  // uniform failure
  for (auto& r : results) r.status = EstimateStatus::kBatchTooLarge;
  EXPECT_EQ(EstimateWireHttpStatus(results), 413);
  for (auto& r : results) r.status = EstimateStatus::kModelNotFound;
  EXPECT_EQ(EstimateWireHttpStatus(results), 503);
}

// ---------------------------------------------------------------------------
// Fast-path wire parser: ParseEstimateWireRequest promises observational
// equivalence with JsonValue::Parse + ParseEstimateWireBatch — same
// accept/reject verdict, same error text, same parsed values — whether a
// body takes the single-pass scanner or falls back to the tree.
// ---------------------------------------------------------------------------

void ExpectWireParseEquivalent(const std::string& body) {
  std::vector<EstimateRequest> fast_requests;
  SubmitOptions fast_options;
  std::string fast_tenant = "stale";
  std::string fast_error;
  const bool fast_ok = ParseEstimateWireRequest(
      body, &fast_requests, &fast_options, &fast_tenant, &fast_error);

  std::vector<EstimateRequest> tree_requests;
  SubmitOptions tree_options;
  std::string tree_tenant = "stale";
  std::string tree_error;
  bool tree_ok = false;
  JsonValue tree;
  std::string syntax_error;
  if (!JsonValue::Parse(body, &tree, &syntax_error)) {
    tree_error = "malformed JSON: " + syntax_error;
  } else {
    tree_ok = ParseEstimateWireBatch(tree, &tree_requests, &tree_options,
                                     &tree_error, &tree_tenant);
  }

  EXPECT_EQ(fast_ok, tree_ok) << body;
  if (!fast_ok || !tree_ok) {
    EXPECT_EQ(fast_error, tree_error) << body;
    return;
  }
  EXPECT_EQ(fast_tenant, tree_tenant) << body;
  EXPECT_EQ(fast_options.priority, tree_options.priority) << body;
  // Deadlines are converted to absolute time at parse time, so two parses
  // differ by the call gap; only presence is comparable.
  EXPECT_EQ(fast_options.has_deadline(), tree_options.has_deadline()) << body;
  ASSERT_EQ(fast_requests.size(), tree_requests.size()) << body;
  for (size_t i = 0; i < fast_requests.size(); ++i) {
    EXPECT_EQ(fast_requests[i].op, tree_requests[i].op) << body;
    EXPECT_EQ(fast_requests[i].resource, tree_requests[i].resource) << body;
    EXPECT_EQ(std::memcmp(fast_requests[i].features.data(),
                          tree_requests[i].features.data(),
                          sizeof(FeatureVector)),
              0)
        << body << " request " << i;
  }
}

TEST(WireApiTest, FastPathParserMatchesTreeParserOnHotShapes) {
  // The shapes clients actually send: every combination the scanner claims
  // to handle without the tree, with awkward-but-valid numbers.
  const auto requests = [](int n, int salt) {
    std::vector<EstimateRequest> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(EstimateRequest::ForOperator(
          static_cast<OpType>((i + salt) % kNumOpTypes), TestFeatures(i),
          i % 2 == 0 ? Resource::kCpu : Resource::kIo));
    }
    return out;
  };
  ExpectWireParseEquivalent(WireBatchBody(requests(1, 0), ""));
  ExpectWireParseEquivalent(WireBatchBody(requests(8, 3), "urgent"));
  ExpectWireParseEquivalent(WireBatchBody(requests(64, 5), "bulk", 250.0));
  ExpectWireParseEquivalent(
      "{\"tenant\":\"alpha\",\"requests\":[{\"op\":\"Sort\","
      "\"resource\":\"CPU\",\"features\":[1e-308,2.5e17,-0.0,3]}]}");
  ExpectWireParseEquivalent(
      " { \"priority\" : \"normal\" , \"deadline_ms\" : 1.5e3 , "
      "\"requests\" : [ { \"op\" : \"HashJoin\" , \"resource\" : \"IO\" , "
      "\"features\" : [ ] } ] } ");
  ExpectWireParseEquivalent(
      "{\"requests\":[{\"features\":[1,2],\"resource\":\"io\","
      "\"op\":\"TableScan\"}],\"tenant\":\"t-1.x_2\"}");
}

TEST(WireApiTest, FastPathParserMatchesTreeParserOnRejectsAndFallbacks) {
  const char* bodies[] = {
      // Syntax errors: identical "malformed JSON: ..." diagnostics.
      "", "{", "{\"requests\":[}", "nan", "{\"requests\":[]} trailing",
      "{\"requests\":[{\"op\":\"Sort\",\"resource\":\"CPU\","
      "\"features\":[01]}]}",
      // Wire-contract errors (tree-path diagnostics, byte for byte).
      "[]", "3", "{\"requests\": 3}", "{\"requests\": []}",
      "{\"dead_line_ms\": 5, \"requests\":"
      " [{\"op\":\"Sort\",\"resource\":\"CPU\",\"features\":[]}]}",
      "{\"priority\": \"high\", \"requests\": []}",
      "{\"priority\": 7, \"requests\": []}",
      "{\"deadline_ms\": -1, \"requests\": []}",
      "{\"deadline_ms\": \"soon\", \"requests\": []}",
      "{\"tenant\": 9, \"requests\":"
      " [{\"op\":\"Sort\",\"resource\":\"CPU\",\"features\":[]}]}",
      "{\"requests\": [5]}",
      "{\"requests\": [{\"resource\":\"CPU\",\"features\":[]}]}",
      "{\"requests\": [{\"op\":\"NoSuchOp\",\"resource\":\"CPU\","
      "\"features\":[]}]}",
      "{\"requests\": [{\"op\":\"Sort\",\"resource\":\"RAM\","
      "\"features\":[]}]}",
      "{\"requests\": [{\"op\":\"Sort\",\"resource\":\"CPU\"}]}",
      "{\"requests\": [{\"op\":\"Sort\",\"resource\":\"CPU\","
      "\"features\":[true]}]}",
      "{\"requests\": [{\"op\":\"Sort\",\"resource\":\"CPU\","
      "\"features\":[],\"weight\":2}]}",
      // Valid JSON the scanner bails on (escapes, duplicate keys, unicode):
      // must still parse identically via the tree.
      "{\"priority\":\"bulk\",\"priority\":\"urgent\",\"requests\":"
      "[{\"op\":\"Sort\",\"resource\":\"CPU\",\"features\":[1]}]}",
      "{\"tenant\":\"\\u0061lpha\",\"requests\":"
      "[{\"op\":\"Sort\",\"resource\":\"CPU\",\"features\":[1]}]}",
      "{\"requests\":[{\"op\":\"So\\u0072t\",\"resource\":\"CPU\","
      "\"features\":[1]}]}",
  };
  for (const char* body : bodies) ExpectWireParseEquivalent(body);

  // Feature overflow (kNumFeatures + 1): rejected on both paths.
  std::string long_features =
      "{\"requests\":[{\"op\":\"Sort\",\"resource\":\"CPU\",\"features\":[0";
  for (int i = 0; i < kNumFeatures; ++i) long_features += ",0";
  long_features += "]}]}";
  ExpectWireParseEquivalent(long_features);
}

// ---------------------------------------------------------------------------
// ShutdownLatch (programmatic paths; signal delivery is covered by the
// subprocess SIGTERM test below)
// ---------------------------------------------------------------------------

TEST(ShutdownLatchTest, TriggerTripsWaitersAndResetRearms) {
  ShutdownLatch::Reset();
  EXPECT_FALSE(ShutdownLatch::Requested());
  EXPECT_FALSE(ShutdownLatch::WaitFor(std::chrono::milliseconds(10)));
  std::thread trip([]() { ShutdownLatch::Trigger(); });
  ShutdownLatch::Wait();
  trip.join();
  EXPECT_TRUE(ShutdownLatch::Requested());
  EXPECT_EQ(ShutdownLatch::Signal(), SIGTERM);
  EXPECT_TRUE(ShutdownLatch::WaitFor(std::chrono::milliseconds(0)));
  ShutdownLatch::Reset();
  EXPECT_FALSE(ShutdownLatch::Requested());
  EXPECT_EQ(ShutdownLatch::Signal(), 0);
}

// ---------------------------------------------------------------------------
// HttpServer transport contracts (trivial handlers, no service)
// ---------------------------------------------------------------------------

/// A raw loopback connection with split send/read, for tests that must
/// control exactly when bytes hit the server (drain races, malformed
/// request lines).
struct RawConn {
  int fd = -1;

  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  bool Connect(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool SendAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one full HTTP response (headers + Content-Length body); returns
  /// the status code, or 0 on transport failure.
  int ReadResponse(std::string* body = nullptr) {
    std::string buffer;
    size_t header_end;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return 0;
      buffer.append(chunk, static_cast<size_t>(n));
    }
    int status = 0;
    std::sscanf(buffer.c_str(), "HTTP/1.1 %d", &status);
    size_t content_length = 0;
    const size_t cl = buffer.find("Content-Length:");
    if (cl != std::string::npos && cl < header_end) {
      content_length = static_cast<size_t>(
          std::strtoull(buffer.c_str() + cl + 15, nullptr, 10));
    }
    while (buffer.size() < header_end + 4 + content_length) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return 0;
      buffer.append(chunk, static_cast<size_t>(n));
    }
    if (body != nullptr) {
      *body = buffer.substr(header_end + 4, content_length);
    }
    return status;
  }
};

HttpServerOptions FastPollOptions() {
  HttpServerOptions options;
  options.poll_interval_ms = 5;  // keep drain/idle latency low in tests
  return options;
}

TEST(HttpServerTest, ServesKeepAliveRequestsAndEchoesBodies) {
  ThreadPool pool(2);
  HttpServer server(
      &pool,
      [](const HttpRequest& request) {
        HttpResponse response;
        response.body = request.method + " " + request.target + " q=" +
                        request.query + " body=" + request.body;
        return response;
      },
      FastPollOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  HttpClientResponse response;
  ASSERT_TRUE(client.Get("/a/b?x=1", &response, &error)) << error;
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "GET /a/b q=x=1 body=");
  // Second request on the same kept-alive connection.
  ASSERT_TRUE(client.Post("/echo", "payload", &response, &error)) << error;
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "POST /echo q= body=payload");
  EXPECT_EQ(server.requests_served(), 2u);
  server.Stop();
}

TEST(HttpServerTest, RejectsOversizedBodyWithoutInvokingHandler) {
  ThreadPool pool(2);
  std::atomic<int> handler_calls{0};
  HttpServerOptions options = FastPollOptions();
  options.max_body_bytes = 64;
  HttpServer server(
      &pool,
      [&handler_calls](const HttpRequest&) {
        handler_calls.fetch_add(1);
        return HttpResponse{};
      },
      options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  HttpClientResponse response;
  ASSERT_TRUE(client.Post("/x", std::string(65, 'a'), &response, &error))
      << error;
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(handler_calls.load(), 0);
  // At the limit passes through.
  ASSERT_TRUE(client.Post("/x", std::string(64, 'a'), &response, &error))
      << error;
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(handler_calls.load(), 1);
  server.Stop();
}

TEST(HttpServerTest, RejectsMalformedRequestLineAndTransferEncoding) {
  ThreadPool pool(2);
  HttpServer server(
      &pool, [](const HttpRequest&) { return HttpResponse{}; },
      FastPollOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.SendAll("NONSENSE\r\n\r\n"));
    EXPECT_EQ(conn.ReadResponse(), 400);
  }
  {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.SendAll(
        "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
    EXPECT_EQ(conn.ReadResponse(), 400);
  }
  server.Stop();
}

TEST(HttpServerTest, StopAnswersInFlightRequestBeforeReturning) {
  ThreadPool pool(4);
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> entered_once{false};
  HttpServer server(
      &pool,
      [&entered, &entered_once, release_future](const HttpRequest&) {
        if (!entered_once.exchange(true)) entered.set_value();
        release_future.wait();
        HttpResponse response;
        response.body = "done";
        return response;
      },
      FastPollOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  HttpClientResponse response;
  std::string client_error;
  bool ok = false;
  const uint16_t port = server.port();
  std::thread client_thread([&]() {
    HttpClient client;
    ok = client.Connect("127.0.0.1", port, &client_error) &&
         client.Get("/slow", &response, &client_error);
  });
  entered.get_future().wait();  // request is in the handler

  std::thread stopper([&server]() { server.Stop(); });
  // Stop() must not complete while the handler is still running; give it a
  // moment to (wrongly) finish early, then release the handler.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(server.active_connections(), 1u);
  release.set_value();
  stopper.join();
  client_thread.join();
  ASSERT_TRUE(ok) << client_error;
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "done");
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(HttpServerTest, StopServesBytesDeliveredBeforeDrainBegan) {
  ThreadPool pool(2);
  HttpServer server(
      &pool,
      [](const HttpRequest&) {
        HttpResponse response;
        response.body = "late";
        return response;
      },
      FastPollOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  // Wait until the connection task exists so Stop() cannot close the
  // listener before the accept.
  while (server.active_connections() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(conn.SendAll("GET /pending HTTP/1.1\r\nHost: x\r\n\r\n"));
  server.Stop();  // bytes are at the socket: must be answered, not dropped
  std::string body;
  EXPECT_EQ(conn.ReadResponse(&body), 200);
  EXPECT_EQ(body, "late");
}

// ---------------------------------------------------------------------------
// Serving front end integration: one trained model shared by the suite.
// ---------------------------------------------------------------------------

class ServerFrontendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 0.4, 1.0, 42).release();
    Rng rng(7);
    auto queries = GenerateTpchWorkload(50, &rng, db_);
    auto workload = RunWorkload(db_, queries);
    TrainOptions options;
    options.mart.num_trees = 30;  // small models keep the suite fast
    estimator_ = new ResourceEstimator(
        ResourceEstimator::Train(workload, options));
    model_path_ = new std::string(::testing::TempDir() +
                                  "resest_server_test.model");
    ASSERT_TRUE(estimator_->SaveToFile(*model_path_));
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete model_path_;
    model_path_ = nullptr;
    delete estimator_;
    estimator_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  void SetUp() override {
    pool_ = std::make_unique<ThreadPool>(4);
    registry_ = std::make_unique<ModelRegistry>();
    // Non-owning alias: the suite owns the estimator.
    registry_->Publish("default",
                       std::shared_ptr<const ResourceEstimator>(
                           estimator_, [](const auto*) {}));
    service_ = std::make_unique<EstimationService>(registry_.get(),
                                                   pool_.get());
    frontend_ = std::make_unique<ServingFrontend>(service_.get(),
                                                  registry_.get(), "default");
  }

  void TearDown() override {
    frontend_.reset();
    service_.reset();
    registry_.reset();
    pool_.reset();
  }

  static std::vector<EstimateRequest> OperatorRequests(int count, int salt) {
    std::vector<EstimateRequest> requests;
    for (int i = 0; i < count; ++i) {
      requests.push_back(EstimateRequest::ForOperator(
          static_cast<OpType>((i + salt) % kNumOpTypes),
          TestFeatures(i + salt),
          i % 2 == 0 ? Resource::kCpu : Resource::kIo));
    }
    return requests;
  }

  static HttpRequest Post(const std::string& target, std::string body) {
    HttpRequest request;
    request.method = "POST";
    request.target = target;
    request.body = std::move(body);
    return request;
  }

  static HttpRequest Get(const std::string& target) {
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    return request;
  }

  /// Extracts the double values of a /v1/estimate response body, asserting
  /// every result has the given status.
  static std::vector<double> ResponseValues(const std::string& body,
                                            EstimateStatus expected_status) {
    const JsonValue parsed = MustParse(body);
    std::vector<double> values;
    const JsonValue* results = parsed.Find("results");
    EXPECT_NE(results, nullptr) << body;
    if (results == nullptr) return values;
    for (const JsonValue& item : results->items()) {
      EstimateStatus status;
      EXPECT_TRUE(
          ParseEstimateStatus(item.Find("status")->as_string(), &status));
      EXPECT_EQ(status, expected_status);
      values.push_back(item.Find("value")->as_number());
    }
    return values;
  }

  /// Shared body for the coalesced-loopback bit-identity test, run against
  /// both poller backends: concurrent keep-alive clients with mixed
  /// priorities (plus one deadline-carrying stream, which bypasses the
  /// coalescer) through the async server must produce responses
  /// byte-identical to the synchronous solo path.
  void RunCoalescedLoopback(bool use_poll) {
    BatchCoalescer coalescer(service_.get(), {});
    frontend_->set_coalescer(&coalescer);
    HttpServerOptions options = FastPollOptions();
    options.use_poll = use_poll;
    HttpServer server(
        [this](const HttpRequest& r, HttpResponseSender respond) {
          frontend_->HandleAsync(r, std::move(respond));
        },
        options);
    frontend_->set_http_server(&server);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    const char* priorities[] = {"urgent", "normal", "bulk", "normal"};
    std::vector<std::string> bodies;
    std::vector<std::string> expected;
    for (int c = 0; c < 4; ++c) {
      const std::string body =
          WireBatchBody(OperatorRequests(6 + c, c * 13), priorities[c],
                        /*deadline_ms=*/c == 3 ? 5000.0 : 0.0);
      expected.push_back(frontend_->Handle(Post("/v1/estimate", body)).body);
      bodies.push_back(body);
    }

    constexpr int kRounds = 5;
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    for (size_t c = 0; c < bodies.size(); ++c) {
      clients.emplace_back([&, c]() {
        HttpClient client;
        std::string cerror;
        if (!client.Connect("127.0.0.1", server.port(), &cerror)) {
          failures.fetch_add(kRounds);
          return;
        }
        for (int round = 0; round < kRounds; ++round) {
          HttpClientResponse response;
          if (!client.Post("/v1/estimate", bodies[c], &response, &cerror) ||
              response.status != 200 || response.body != expected[c]) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);

    const CoalescerStats stats = coalescer.stats();
    EXPECT_EQ(stats.submissions + stats.passthrough,
              static_cast<uint64_t>(bodies.size()) * kRounds);
    // The deadline stream forwarded solo every round; urgent never waited.
    EXPECT_GE(stats.passthrough, static_cast<uint64_t>(kRounds));
    EXPECT_GE(stats.flush_urgent, static_cast<uint64_t>(kRounds));

    // The scrape exposes the connection counters and coalescer families.
    HttpClient scraper;
    ASSERT_TRUE(scraper.Connect("127.0.0.1", server.port(), &error)) << error;
    HttpClientResponse metrics;
    ASSERT_TRUE(scraper.Get("/metrics", &metrics, &error)) << error;
    ASSERT_EQ(metrics.status, 200);
    for (const char* family :
         {"resest_http_connections_accepted_total",
          "resest_http_keepalive_requests_total",
          "resest_coalesce_submissions_total",
          "resest_coalesce_flushes_total{trigger=\"urgent\"}",
          "resest_coalesce_batch_rows_bucket",
          "resest_coalesce_wait_seconds_count"}) {
      EXPECT_NE(metrics.body.find(family), std::string::npos) << family;
    }

    server.Stop();
    EXPECT_EQ(server.active_connections(), 0u);
    frontend_->set_coalescer(nullptr);
  }

  static Database* db_;
  static ResourceEstimator* estimator_;
  static std::string* model_path_;

  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<EstimationService> service_;
  std::unique_ptr<ServingFrontend> frontend_;
};

Database* ServerFrontendTest::db_ = nullptr;
ResourceEstimator* ServerFrontendTest::estimator_ = nullptr;
std::string* ServerFrontendTest::model_path_ = nullptr;

TEST_F(ServerFrontendTest, OperatorRequestsMatchDirectEstimatorBitForBit) {
  // The unified request API: feature-based requests through the batch
  // pipeline equal ResourceEstimator::EstimateFromFeatures exactly, and the
  // second pass is served by the estimate cache with identical bits.
  const auto requests = OperatorRequests(24, 3);
  for (int pass = 0; pass < 2; ++pass) {
    const auto results = service_->EstimateBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      const double direct = estimator_->EstimateFromFeatures(
          requests[i].op, requests[i].features, requests[i].resource);
      EXPECT_EQ(std::memcmp(&results[i].value, &direct, sizeof(double)), 0)
          << "pass " << pass << " request " << i;
    }
  }
  EXPECT_GT(service_->stats().cache_hits, 0u);
}

TEST_F(ServerFrontendTest, EstimateEndpointIsBitIdenticalToDirectCall) {
  const auto requests = OperatorRequests(16, 11);
  const auto direct = service_->EstimateBatch(requests);

  const HttpResponse response = frontend_->Handle(
      Post("/v1/estimate", WireBatchBody(requests, "normal")));
  ASSERT_EQ(response.status, 200) << response.body;
  const std::vector<double> values =
      ResponseValues(response.body, EstimateStatus::kOk);
  ASSERT_EQ(values.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(std::memcmp(&values[i], &direct[i].value, sizeof(double)), 0)
        << "request " << i;
  }
}

TEST_F(ServerFrontendTest, ExpiredDeadlineMapsTo504) {
  const auto requests = OperatorRequests(8, 2);
  // A deadline this tight always passes before submission; the batch is
  // expired whole, which is a uniform failure -> its mapped HTTP code.
  const HttpResponse response = frontend_->Handle(Post(
      "/v1/estimate", WireBatchBody(requests, "bulk", /*deadline_ms=*/1e-4)));
  EXPECT_EQ(response.status, 504) << response.body;
  ResponseValues(response.body, EstimateStatus::kDeadlineExceeded);
  EXPECT_EQ(service_->stats().deadline_expired, requests.size());
}

TEST_F(ServerFrontendTest, MalformedJsonIs400AndNeverTouchesTheService) {
  for (const char* bad :
       {"{not json", "", "[1,2,3]", "{\"requests\": \"nope\"}",
        "{\"requests\": [{\"op\": \"Sort\"}]}"}) {
    const HttpResponse response =
        frontend_->Handle(Post("/v1/estimate", bad));
    EXPECT_EQ(response.status, 400) << bad;
    EXPECT_NE(response.body.find("error"), std::string::npos);
  }
  const ServiceStats stats = service_->stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.requests, 0u);
}

TEST_F(ServerFrontendTest, UnknownRoutesAndMethodsAreRejected) {
  EXPECT_EQ(frontend_->Handle(Get("/nope")).status, 404);
  EXPECT_EQ(frontend_->Handle(Get("/v1/estimate")).status, 405);
  EXPECT_EQ(frontend_->Handle(Post("/healthz", "")).status, 405);
  EXPECT_EQ(frontend_->Handle(Post("/metrics", "")).status, 405);
}

TEST_F(ServerFrontendTest, HealthzReportsActiveModelOr503) {
  const HttpResponse healthy = frontend_->Handle(Get("/healthz"));
  EXPECT_EQ(healthy.status, 200);
  const JsonValue body = MustParse(healthy.body);
  EXPECT_EQ(body.Find("status")->as_string(), "ok");
  EXPECT_GE(body.Find("model_version")->as_number(), 1.0);

  ModelRegistry empty;
  ServingFrontend no_model(service_.get(), &empty, "default");
  EXPECT_EQ(no_model.Handle(Get("/healthz")).status, 503);
}

TEST_F(ServerFrontendTest, NoActiveModelMapsEstimateTo503) {
  ModelRegistry empty;
  EstimationService service(&empty, pool_.get());
  ServingFrontend frontend(&service, &empty, "default");
  const HttpResponse response = frontend.Handle(
      Post("/v1/estimate", WireBatchBody(OperatorRequests(2, 0), "")));
  EXPECT_EQ(response.status, 503) << response.body;
  ResponseValues(response.body, EstimateStatus::kModelNotFound);
}

TEST_F(ServerFrontendTest, MetricsExposeLaneCacheAndModelSeries) {
  // Move some counters first: an urgent batch (with cache hits on the
  // second pass) and a bulk batch.
  const auto requests = OperatorRequests(12, 5);
  SubmitOptions urgent;
  urgent.priority = TaskPriority::kUrgent;
  service_->EstimateBatch(requests, urgent);
  service_->EstimateBatch(requests, urgent);
  SubmitOptions bulk;
  bulk.priority = TaskPriority::kBulk;
  service_->EstimateBatch(OperatorRequests(4, 9), bulk);

  const HttpResponse response = frontend_->Handle(Get("/metrics"));
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("text/plain"), std::string::npos);
  const std::string& text = response.body;

  EXPECT_NE(text.find("resest_lane_batches_total{priority=\"urgent\"} 2\n"),
            std::string::npos)
      << text.substr(0, 2000);
  EXPECT_NE(text.find("resest_lane_batches_total{priority=\"bulk\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("resest_lane_requests_total{priority=\"urgent\"} 24\n"),
            std::string::npos);
  // Histogram series carry cumulative buckets and +Inf per lane.
  EXPECT_NE(text.find("# TYPE resest_batch_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "resest_batch_latency_seconds_bucket{priority=\"urgent\",le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("resest_batch_latency_seconds_count{priority=\"urgent\"} 2\n"),
            std::string::npos);
  // Cache totals moved (second urgent pass hit), and shards are broken out.
  EXPECT_NE(text.find("resest_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("resest_cache_shard_hits_total{shard=\"0\"}"),
            std::string::npos);
  // Model and slot versions.
  EXPECT_NE(text.find("resest_model_version{model=\"default\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "resest_model_slot_version{model=\"default\",op=\"TableScan\",resource=\"CPU\"} 1\n"),
      std::string::npos);

  // The scrape itself is parseable enough to find a nonzero hit counter
  // (leading newline skips the # HELP line).
  const size_t at = text.find("\nresest_cache_hits_total ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_GT(std::atof(text.c_str() + at + 25), 0.0);
}

TEST_F(ServerFrontendTest, LoopbackMixedPrioritiesBitIdenticalAndScraped) {
  HttpServer server(
      pool_.get(),
      [this](const HttpRequest& r) { return frontend_->Handle(r); },
      FastPollOptions());
  frontend_->set_http_server(&server);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;

  const char* priorities[] = {"urgent", "normal", "bulk"};
  for (int p = 0; p < 3; ++p) {
    const auto requests = OperatorRequests(10, p * 17);
    const auto direct = service_->EstimateBatch(requests);
    HttpClientResponse response;
    ASSERT_TRUE(client.Post("/v1/estimate",
                            WireBatchBody(requests, priorities[p]), &response,
                            &error))
        << error;
    ASSERT_EQ(response.status, 200) << response.body;
    const std::vector<double> values =
        ResponseValues(response.body, EstimateStatus::kOk);
    ASSERT_EQ(values.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(std::memcmp(&values[i], &direct[i].value, sizeof(double)), 0)
          << priorities[p] << " request " << i;
    }
  }

  // The scrape over HTTP shows every lane moved and the server's own
  // counters (3 estimates + this scrape in flight).
  HttpClientResponse metrics;
  ASSERT_TRUE(client.Get("/metrics", &metrics, &error)) << error;
  ASSERT_EQ(metrics.status, 200);
  for (const char* priority : priorities) {
    const std::string needle = std::string("resest_lane_batches_total{priority=\"") +
                               priority + "\"}";
    const size_t at = metrics.body.find(needle);
    ASSERT_NE(at, std::string::npos) << needle;
    EXPECT_GT(std::atof(metrics.body.c_str() + at + needle.size()), 0.0)
        << needle;
  }
  EXPECT_NE(metrics.body.find("resest_http_requests_total 3\n"),
            std::string::npos);

  server.Stop();
  // Drain accounting: everything answered, nothing open.
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.requests_served(), 4u);
}

TEST_F(ServerFrontendTest, OversizedBodyOverHttpIs400AndServiceUntouched) {
  HttpServerOptions options = FastPollOptions();
  options.max_body_bytes = 1024;
  HttpServer server(
      pool_.get(),
      [this](const HttpRequest& r) { return frontend_->Handle(r); }, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A real estimate body that simply exceeds the configured cap.
  const std::string big = WireBatchBody(OperatorRequests(64, 1), "normal");
  ASSERT_GT(big.size(), options.max_body_bytes);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  HttpClientResponse response;
  ASSERT_TRUE(client.Post("/v1/estimate", big, &response, &error)) << error;
  EXPECT_EQ(response.status, 400);
  const ServiceStats stats = service_->stats();
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.requests, 0u);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Event-driven server + cross-request coalescing.
// ---------------------------------------------------------------------------

TEST_F(ServerFrontendTest, CoalescedResponsesBitIdenticalToSoloEpoll) {
  RunCoalescedLoopback(/*use_poll=*/false);
}

TEST_F(ServerFrontendTest, CoalescedResponsesBitIdenticalToSoloPoll) {
  RunCoalescedLoopback(/*use_poll=*/true);
}

TEST_F(ServerFrontendTest, UrgentRequestDoesNotWaitForBulkCoalesceWindow) {
  // An absurdly long window makes any accidental wait unmissable: a bulk
  // request opens the window, and an urgent request posted inside it must
  // flush immediately rather than ride the bulk deadline.
  CoalescerOptions copts;
  copts.window_us = 1000 * 1000;
  BatchCoalescer coalescer(service_.get(), copts);
  frontend_->set_coalescer(&coalescer);
  HttpServer server(
      [this](const HttpRequest& r, HttpResponseSender respond) {
        frontend_->HandleAsync(r, std::move(respond));
      },
      FastPollOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::string bulk_body = WireBatchBody(OperatorRequests(7, 3), "bulk");
  const std::string bulk_expected =
      frontend_->Handle(Post("/v1/estimate", bulk_body)).body;
  const std::string urgent_body =
      WireBatchBody(OperatorRequests(5, 21), "urgent");
  const std::string urgent_expected =
      frontend_->Handle(Post("/v1/estimate", urgent_body)).body;

  std::thread bulk_client([&]() {
    HttpClient client;
    std::string cerror;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &cerror)) << cerror;
    HttpClientResponse response;
    ASSERT_TRUE(client.Post("/v1/estimate", bulk_body, &response, &cerror))
        << cerror;
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, bulk_expected);
  });
  // Wait until the bulk rows are actually parked in the window.
  for (int spin = 0; spin < 2000 && coalescer.stats().submissions == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(coalescer.stats().submissions, 1u);

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  const auto start = std::chrono::steady_clock::now();
  HttpClientResponse response;
  ASSERT_TRUE(client.Post("/v1/estimate", urgent_body, &response, &error))
      << error;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, urgent_expected);
  EXPECT_LT(elapsed_ms, 500.0) << "urgent waited on the bulk window";

  bulk_client.join();
  const CoalescerStats stats = coalescer.stats();
  EXPECT_GE(stats.flush_urgent, 1u);
  EXPECT_GE(stats.flush_window, 1u);
  server.Stop();
  frontend_->set_coalescer(nullptr);
}

TEST_F(ServerFrontendTest, MalformedRequestIsolatedFromCoalescedWindow) {
  // Wire-parse rejection happens on the I/O thread before the coalescer:
  // a malformed request answered 400 inside an open window must never
  // poison the merged batch the valid requests ride in.
  CoalescerOptions copts;
  copts.window_us = 50 * 1000;
  BatchCoalescer coalescer(service_.get(), copts);
  frontend_->set_coalescer(&coalescer);
  HttpServer server(
      [this](const HttpRequest& r, HttpResponseSender respond) {
        frontend_->HandleAsync(r, std::move(respond));
      },
      FastPollOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::string valid = WireBatchBody(OperatorRequests(5, 2), "normal");
  const std::string expected =
      frontend_->Handle(Post("/v1/estimate", valid)).body;
  const std::string malformed =
      "{\"requests\":[{\"op\":\"NotAnOp\",\"resource\":\"CPU\","
      "\"features\":[1.0]}]}";

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c]() {
      HttpClient client;
      std::string cerror;
      if (!client.Connect("127.0.0.1", server.port(), &cerror)) {
        failures.fetch_add(1);
        return;
      }
      HttpClientResponse response;
      const std::string& body = c == 1 ? malformed : valid;
      if (!client.Post("/v1/estimate", body, &response, &cerror)) {
        failures.fetch_add(1);
        return;
      }
      if (c == 1) {
        if (response.status != 400) failures.fetch_add(1);
      } else if (response.status != 200 || response.body != expected) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Only the two valid submissions ever reached the coalescer.
  const CoalescerStats stats = coalescer.stats();
  EXPECT_EQ(stats.submissions + stats.passthrough, 2u);
  server.Stop();
  frontend_->set_coalescer(nullptr);
}

TEST_F(ServerFrontendTest, PipelinedKeepAliveRequestsAnswerInOrder) {
  // Three requests pipelined in one write on one connection: the server
  // must answer all three, in order, each byte-identical to the solo path
  // (responses can never interleave — strictly one request in flight per
  // connection).
  BatchCoalescer coalescer(service_.get(), {});
  frontend_->set_coalescer(&coalescer);
  HttpServer server(
      [this](const HttpRequest& r, HttpResponseSender respond) {
        frontend_->HandleAsync(r, std::move(respond));
      },
      FastPollOptions());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::vector<std::string> expected;
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    const std::string body =
        WireBatchBody(OperatorRequests(4 + i, i * 7), "normal");
    expected.push_back(frontend_->Handle(Post("/v1/estimate", body)).body);
    wire += "POST /v1/estimate HTTP/1.1\r\nHost: x\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;
  }

  RawConn conn;
  ASSERT_TRUE(conn.Connect(server.port()));
  ASSERT_TRUE(conn.SendAll(wire));
  for (int i = 0; i < 3; ++i) {
    std::string body;
    EXPECT_EQ(conn.ReadResponse(&body), 200) << "response " << i;
    EXPECT_EQ(body, expected[i]) << "response " << i;
  }

  const HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_served, 3u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.keepalive_requests, 2u);
  server.Stop();
  frontend_->set_coalescer(nullptr);
}

// ---------------------------------------------------------------------------
// /v1/observe: ingestion endpoint wiring.
// ---------------------------------------------------------------------------

TEST_F(ServerFrontendTest, ObserveWithoutTrainerIs503) {
  const HttpResponse response = frontend_->Handle(Post(
      "/v1/observe",
      "{\"observations\":[{\"op\":\"TableScan\",\"resource\":\"CPU\","
      "\"features\":[1],\"label\":2.0}]}"));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("--data-dir"), std::string::npos)
      << response.body;
}

TEST_F(ServerFrontendTest, ObserveAppendsRowsAndRejectsMalformedBatches) {
  IncrementalTrainer trainer(TrainOptions{});
  {
    std::vector<ExecutedQuery> empty;
    trainer.SeedAndTrain(empty);
  }
  frontend_->set_trainer(&trainer);

  const HttpResponse ok = frontend_->Handle(Post(
      "/v1/observe",
      "{\"observations\":["
      "{\"op\":\"TableScan\",\"resource\":\"CPU\",\"features\":[1,2],"
      "\"label\":3.5},"
      "{\"op\":\"Sort\",\"resource\":\"IO\",\"features\":[4],\"label\":0.5}"
      "]}"));
  ASSERT_EQ(ok.status, 200) << ok.body;
  EXPECT_NE(ok.body.find("\"accepted\":2"), std::string::npos) << ok.body;
  EXPECT_NE(ok.body.find("\"model_version\""), std::string::npos) << ok.body;
  EXPECT_EQ(trainer.LogStats(OpType::kTableScan, Resource::kCpu).rows, 1u);
  EXPECT_EQ(trainer.LogStats(OpType::kSort, Resource::kIo).rows, 1u);

  // Strict parsing: unknown fields, bad op names and an empty batch are
  // all 400s that append nothing.
  for (const char* bad : {
           "{\"observations\":[{\"op\":\"TableScan\",\"resource\":\"CPU\","
           "\"features\":[1],\"label\":1,\"extra\":1}]}",
           "{\"observations\":[{\"op\":\"NoSuchOp\",\"resource\":\"CPU\","
           "\"features\":[1],\"label\":1}]}",
           "{\"observations\":[]}",
           "{\"rows\":[]}",
           "not json",
       }) {
    const HttpResponse response = frontend_->Handle(Post("/v1/observe", bad));
    EXPECT_EQ(response.status, 400) << bad << " -> " << response.body;
  }
  EXPECT_EQ(trainer.TotalPendingRows(), 2u);
}

// ---------------------------------------------------------------------------
// The real binary: SIGTERM drains with zero dropped responses, exit 0.
// ---------------------------------------------------------------------------

TEST_F(ServerFrontendTest, SigtermDrainsRealServerWithZeroDroppedResponses) {
  const char* bin = std::getenv("RESEST_SERVER_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "RESEST_SERVER_BIN not set (ctest sets it)";
  }

  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string model_flag = "--model=" + *model_path_;
    ::execl(bin, bin, "--port=0", "--threads=2", model_flag.c_str(),
            "--model-name=default", static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);

  // The first stdout line announces the bound ephemeral port.
  FILE* out = ::fdopen(out_pipe[0], "r");
  ASSERT_NE(out, nullptr);
  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), out), nullptr);
  unsigned port = 0;
  ASSERT_EQ(std::sscanf(line, "resest_server listening on 127.0.0.1:%u",
                        &port),
            1)
      << line;
  ASSERT_GT(port, 0u);

  // Establish a served connection first (the healthz answer proves the
  // connection is accepted and its handler task running), then deliver a
  // full estimate request and only afterwards SIGTERM: bytes at the socket
  // pre-signal must be answered before the drain completes.
  RawConn conn;
  ASSERT_TRUE(conn.Connect(static_cast<uint16_t>(port)));
  ASSERT_TRUE(conn.SendAll("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_EQ(conn.ReadResponse(), 200);

  const auto requests = OperatorRequests(32, 7);
  const std::string body = WireBatchBody(requests, "urgent");
  const std::string post = "POST /v1/estimate HTTP/1.1\r\nHost: x\r\n"
                           "Content-Type: application/json\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_TRUE(conn.SendAll(post));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);

  // The in-flight estimate completes despite the signal...
  std::string response_body;
  EXPECT_EQ(conn.ReadResponse(&response_body), 200);
  ResponseValues(response_body, EstimateStatus::kOk);

  // ...the process drains and reports it served everything...
  uint64_t http_requests = 0;
  while (std::fgets(line, sizeof(line), out) != nullptr) {
    unsigned long long served = 0;
    if (std::sscanf(line, "resest_server: drained; served %llu http requests",
                    &served) == 1) {
      http_requests = served;
    }
  }
  EXPECT_EQ(http_requests, 2u);  // healthz + the in-flight estimate
  std::fclose(out);

  // ...and exits 0.
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(ServerFrontendTest, SigtermDrainsUnderConcurrentKeepAliveClients) {
  const char* bin = std::getenv("RESEST_SERVER_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "RESEST_SERVER_BIN not set (ctest sets it)";
  }

  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string model_flag = "--model=" + *model_path_;
    ::execl(bin, bin, "--port=0", "--threads=2", model_flag.c_str(),
            "--model-name=default", static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);

  FILE* out = ::fdopen(out_pipe[0], "r");
  ASSERT_NE(out, nullptr);
  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), out), nullptr);
  unsigned port = 0;
  ASSERT_EQ(
      std::sscanf(line, "resest_server listening on 127.0.0.1:%u", &port), 1)
      << line;
  ASSERT_GT(port, 0u);

  // Continuous keep-alive load from several clients (coalescing is on by
  // default in the binary), SIGTERM mid-flight. The drain contract: every
  // response a client receives is complete and bit-identical to the solo
  // path, and the server's drain line accounts for exactly the responses
  // the clients got — nothing dropped, nothing phantom.
  constexpr int kClients = 3;
  std::vector<std::string> bodies;
  std::vector<std::string> expected;
  const char* priorities[] = {"urgent", "normal", "bulk"};
  for (int c = 0; c < kClients; ++c) {
    const std::string body =
        WireBatchBody(OperatorRequests(5 + c, c * 11), priorities[c]);
    expected.push_back(frontend_->Handle(Post("/v1/estimate", body)).body);
    bodies.push_back(body);
  }
  std::atomic<uint64_t> ok_responses{0};
  std::atomic<int> bad_responses{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      HttpClient client;
      std::string cerror;
      if (!client.Connect("127.0.0.1", static_cast<uint16_t>(port),
                          &cerror)) {
        return;
      }
      for (;;) {
        HttpClientResponse response;
        if (!client.Post("/v1/estimate", bodies[static_cast<size_t>(c)],
                         &response, &cerror)) {
          return;  // drained: listener closed, reconnect refused
        }
        if (response.status == 200 &&
            response.body == expected[static_cast<size_t>(c)]) {
          ok_responses.fetch_add(1);
        } else {
          bad_responses.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  for (auto& t : clients) t.join();

  uint64_t served = 0;
  bool saw_drain_line = false;
  while (std::fgets(line, sizeof(line), out) != nullptr) {
    unsigned long long n = 0;
    if (std::sscanf(line, "resest_server: drained; served %llu http requests",
                    &n) == 1) {
      served = n;
      saw_drain_line = true;
    }
  }
  std::fclose(out);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);

  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_GT(ok_responses.load(), 0u) << "no load reached the server";
  ASSERT_TRUE(saw_drain_line);
  EXPECT_EQ(served, ok_responses.load());
}

// ---------------------------------------------------------------------------
// Tenant routing through the frontend: header/body selection, conflict and
// unknown-tenant rejection, the /v1/tenants admin view, and per-tenant
// metric families.
// ---------------------------------------------------------------------------

TEST_F(ServerFrontendTest, TenantRoutingSelectsConflictsAndRejects) {
  TenantOptions tenant_options;
  tenant_options.service.model_name = "default";
  tenant_options.enable_coalescing = false;
  TenantManager manager(registry_.get(), pool_.get(), tenant_options);
  std::string terror;
  ASSERT_NE(manager.AddTenant(kDefaultTenant, &terror), nullptr) << terror;
  ASSERT_NE(manager.AddTenant("alpha", &terror), nullptr) << terror;
  ASSERT_NE(manager.AddTenant("beta", &terror), nullptr) << terror;
  manager.PublishToAll(std::shared_ptr<const ResourceEstimator>(
      estimator_, [](const auto*) {}));
  frontend_->set_tenant_manager(&manager);

  const std::string body = WireBatchBody(OperatorRequests(4, 2), "normal");

  // Header-selected tenant serves from alpha's universe (its own model
  // version and its own cache region).
  HttpRequest header_request = Post("/v1/estimate", body);
  header_request.headers.emplace_back("X-Resest-Tenant", "alpha");
  const HttpResponse alpha1 = frontend_->Handle(header_request);
  ASSERT_EQ(alpha1.status, 200) << alpha1.body;
  const uint64_t alpha_version = registry_->Get("default@alpha").version;
  EXPECT_NE(alpha1.body.find("\"model_version\":" +
                             std::to_string(alpha_version)),
            std::string::npos)
      << alpha1.body;

  // Body-selected tenant: same contract via the "tenant" field.
  std::string beta_body = "{\"tenant\":\"beta\"," + body.substr(1);
  const HttpResponse beta1 = frontend_->Handle(Post("/v1/estimate",
                                                    beta_body));
  ASSERT_EQ(beta1.status, 200) << beta1.body;
  EXPECT_NE(beta1.body.find("\"model_version\":" +
                            std::to_string(
                                registry_->Get("default@beta").version)),
            std::string::npos)
      << beta1.body;

  // Header and body must agree when both are present.
  HttpRequest conflict = Post("/v1/estimate", beta_body);
  conflict.headers.emplace_back("X-Resest-Tenant", "alpha");
  const HttpResponse conflicted = frontend_->Handle(conflict);
  EXPECT_EQ(conflicted.status, 400);
  EXPECT_NE(conflicted.body.find("tenant mismatch"), std::string::npos)
      << conflicted.body;
  // Agreeing header + body is fine.
  HttpRequest agreeing = Post("/v1/estimate", beta_body);
  agreeing.headers.emplace_back("X-Resest-Tenant", "beta");
  EXPECT_EQ(frontend_->Handle(agreeing).status, 200);

  // Unknown tenants 404 (never auto-created); invalid ids 400.
  HttpRequest unknown = Post("/v1/estimate", body);
  unknown.headers.emplace_back("X-Resest-Tenant", "gamma");
  const HttpResponse missing = frontend_->Handle(unknown);
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("unknown tenant"), std::string::npos);
  HttpRequest invalid = Post("/v1/estimate", body);
  invalid.headers.emplace_back("X-Resest-Tenant", "/etc/passwd");
  EXPECT_EQ(frontend_->Handle(invalid).status, 400);

  // Tenant-scoped healthz reports the tenant's model name.
  HttpRequest health = Get("/healthz");
  health.headers.emplace_back("X-Resest-Tenant", "alpha");
  const HttpResponse health_response = frontend_->Handle(health);
  ASSERT_EQ(health_response.status, 200);
  EXPECT_NE(health_response.body.find("default@alpha"), std::string::npos)
      << health_response.body;

  // The admin view lists every tenant; alpha shows the traffic above.
  const HttpResponse tenants = frontend_->Handle(Get("/v1/tenants"));
  ASSERT_EQ(tenants.status, 200);
  for (const char* needle :
       {"\"tenant\":\"default\"", "\"tenant\":\"alpha\"",
        "\"tenant\":\"beta\"", "\"cache\":{", "\"obslog\":{",
        "\"lanes\":{"}) {
    EXPECT_NE(tenants.body.find(needle), std::string::npos) << needle;
  }

  // Metrics expose one sample per tenant in each resest_tenant_* family.
  const HttpResponse metrics = frontend_->Handle(Get("/metrics"));
  ASSERT_EQ(metrics.status, 200);
  for (const char* needle :
       {"resest_tenant_requests_total{tenant=\"default\"}",
        "resest_tenant_requests_total{tenant=\"alpha\"}",
        "resest_tenant_requests_total{tenant=\"beta\"}",
        "resest_tenant_cache_pressure{tenant=\"alpha\"}",
        "resest_tenant_model_version{tenant=\"beta\",model="
        "\"default@beta\"}"}) {
    EXPECT_NE(metrics.body.find(needle), std::string::npos) << needle;
  }

  // Requests routed to alpha never touched the frontend's single-tenant
  // service (the default tenant in the manager is a different instance).
  EXPECT_EQ(service_->stats().requests, 0u);
  frontend_->set_tenant_manager(nullptr);
}

TEST_F(ServerFrontendTest, SingleTenantModeRejectsNamedTenants) {
  // Without a TenantManager only the default tenant exists; naming any
  // other tenant is a 404, and naming the default works.
  const std::string body = WireBatchBody(OperatorRequests(2, 1), "normal");
  HttpRequest named = Post("/v1/estimate", body);
  named.headers.emplace_back("X-Resest-Tenant", "alpha");
  EXPECT_EQ(frontend_->Handle(named).status, 404);
  HttpRequest defaulted = Post("/v1/estimate", body);
  defaulted.headers.emplace_back("X-Resest-Tenant", kDefaultTenant);
  EXPECT_EQ(frontend_->Handle(defaulted).status, 200);
  // /v1/tenants still answers with the synthesized default entry.
  const HttpResponse tenants = frontend_->Handle(Get("/v1/tenants"));
  ASSERT_EQ(tenants.status, 200);
  EXPECT_NE(tenants.body.find("\"tenant\":\"default\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Durable drain: SIGTERM checkpoints and seals the WAL — every observation
// accepted over /v1/observe before the signal survives on disk.
// ---------------------------------------------------------------------------

TEST_F(ServerFrontendTest, SigtermDrainSealsWalWithZeroLostObservations) {
  const char* bin = std::getenv("RESEST_SERVER_BIN");
  if (bin == nullptr || bin[0] == '\0') {
    GTEST_SKIP() << "RESEST_SERVER_BIN not set (ctest sets it)";
  }
  const auto data_dir =
      std::filesystem::temp_directory_path() / "resest_server_drain_wal";
  std::filesystem::remove_all(data_dir);
  std::filesystem::create_directories(data_dir);

  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    const std::string model_flag = "--model=" + *model_path_;
    const std::string data_flag = "--data-dir=" + data_dir.string();
    ::execl(bin, bin, "--port=0", "--threads=2", model_flag.c_str(),
            "--model-name=default", data_flag.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);

  // With --data-dir the server prints its recovery summary before the
  // listening line — scan stdout for the port announcement.
  FILE* out = ::fdopen(out_pipe[0], "r");
  ASSERT_NE(out, nullptr);
  char line[256] = {0};
  unsigned port = 0;
  while (std::fgets(line, sizeof(line), out) != nullptr) {
    if (std::sscanf(line, "resest_server listening on 127.0.0.1:%u", &port) ==
        1) {
      break;
    }
  }
  ASSERT_GT(port, 0u);

  // POST a deterministic batch; every accepted row must survive the drain.
  constexpr int kRows = 37;
  std::string body = "{\"observations\":[";
  for (int i = 0; i < kRows; ++i) {
    if (i > 0) body += ",";
    const OpType op = static_cast<OpType>(i % kNumOpTypes);
    const Resource resource = static_cast<Resource>(i % kNumResources);
    body += std::string("{\"op\":\"") + OpTypeName(op) + "\",\"resource\":\"" +
            ResourceName(resource) + "\",\"features\":[" + std::to_string(i) +
            ",2.5],\"label\":" + std::to_string(i * 0.25) + "}";
  }
  body += "]}";

  HttpClient client;
  std::string error;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", static_cast<uint16_t>(port), &error))
      << error;
  HttpClientResponse response;
  ASSERT_TRUE(client.Post("/v1/observe", body, &response, &error)) << error;
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_NE(response.body.find("\"accepted\":37"), std::string::npos)
      << response.body;

  // SIGTERM only after the 200: the rows were accepted pre-signal.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  bool wal_line = false;
  while (std::fgets(line, sizeof(line), out) != nullptr) {
    if (std::strncmp(line, "resest_server: wal", 18) == 0) wal_line = true;
  }
  EXPECT_TRUE(wal_line) << "drain did not report the WAL seal";
  std::fclose(out);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Replay the data dir: a clean log holding every observation, in order.
  RecoveryStats stats;
  std::vector<WalObservation> rows;
  ASSERT_TRUE(ReplayObservationLog(
      data_dir.string(), "default",
      [&](const WalRecord& record) {
        if (record.type == WalRecordType::kObservation) {
          rows.push_back(record.observation);
        }
      },
      &stats));
  EXPECT_TRUE(stats.clean()) << stats.detail;
  ASSERT_EQ(rows.size(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    EXPECT_EQ(rows[i].op, static_cast<OpType>(i % kNumOpTypes)) << i;
    EXPECT_EQ(rows[i].resource, static_cast<Resource>(i % kNumResources)) << i;
    EXPECT_EQ(rows[i].features[0], static_cast<double>(i)) << i;
    EXPECT_EQ(rows[i].label, i * 0.25) << i;
  }
  std::filesystem::remove_all(data_dir);
}

}  // namespace
}  // namespace resest
