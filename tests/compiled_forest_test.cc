// Golden bit-identity tests for the compiled-forest inference layer: the
// contiguous SoA representation (scalar and batched) must reproduce the
// legacy per-tree scalar walk byte for byte, at every level of the stack —
// Mart, CombinedModel/OperatorModelSet, ResourceEstimator — for MART,
// linear-leaf REGTREE, and constant-fallback models alike.
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/estimator.h"
#include "src/ml/mart.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

namespace resest {
namespace {

// y = x0*log2(x0) + 5*x1 + noise over a few features, mimicking operator
// cost curves.
Dataset MakeData(size_t n, size_t num_features, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x(num_features);
    for (auto& v : x) v = rng.Uniform(1.0, 1000.0);
    const double y = x[0] * std::log2(x[0]) + 5.0 * x[1 % num_features] +
                     rng.Gaussian(0.0, 1.0);
    d.Add(std::move(x), y);
  }
  return d;
}

// Random raw operator feature vectors, spanning in-range and far-out-of-range
// magnitudes so Section 6.3 selection exercises every trained model.
std::vector<FeatureVector> RandomFeatureVectors(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> rows(n);
  for (auto& v : rows) {
    const double scale = std::pow(10.0, rng.Uniform(0.0, 7.0));
    for (auto& f : v) f = rng.Uniform(0.0, scale);
  }
  return rows;
}

class MartBitIdentityTest : public ::testing::TestWithParam<bool> {};

TEST_P(MartBitIdentityTest, CompiledMatchesReferenceBitwise) {
  const bool linear_leaves = GetParam();
  const size_t kFeatures = 6;
  Dataset train = MakeData(2500, kFeatures, 101);
  MartParams params;
  params.num_trees = 150;
  params.linear_leaves = linear_leaves;
  Mart mart(params);
  mart.Fit(train);
  ASSERT_EQ(mart.compiled().NumTrees(), 150u);
  EXPECT_GE(mart.compiled().NumFeaturesReferenced(), 1u);
  EXPECT_LE(mart.compiled().NumFeaturesReferenced(), kFeatures);

  Rng rng(7);
  std::vector<double> matrix;
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(kFeatures);
    // Include far-out-of-range rows: traversal must agree everywhere.
    for (auto& v : x) v = rng.Uniform(-100.0, 5000.0);
    matrix.insert(matrix.end(), x.begin(), x.end());
    rows.push_back(std::move(x));
  }

  std::vector<double> batched(rows.size());
  mart.compiled().PredictBatch(matrix.data(), rows.size(), kFeatures,
                               batched.data());
  for (size_t i = 0; i < rows.size(); ++i) {
    const double reference = mart.PredictReference(rows[i]);
    // EXPECT_EQ, not NEAR: the contract is bitwise identity.
    EXPECT_EQ(mart.Predict(rows[i]), reference);
    EXPECT_EQ(mart.Predict(rows[i].data(), kFeatures), reference);
    EXPECT_EQ(batched[i], reference);
  }
}

TEST_P(MartBitIdentityTest, SerializeRoundTripPreservesCompiledOutput) {
  const bool linear_leaves = GetParam();
  Dataset train = MakeData(1200, 4, 103);
  MartParams params;
  params.num_trees = 80;
  params.linear_leaves = linear_leaves;
  Mart mart(params);
  mart.Fit(train);

  Mart restored;
  ASSERT_TRUE(restored.Deserialize(mart.Serialize()));
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(4);
    for (auto& v : x) v = rng.Uniform(0.0, 3000.0);
    EXPECT_EQ(restored.Predict(x), mart.Predict(x));
    EXPECT_EQ(restored.PredictReference(x), mart.PredictReference(x));
  }
}

INSTANTIATE_TEST_SUITE_P(MartAndRegtree, MartBitIdentityTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "REGTREE" : "MART";
                         });

TEST(CompiledForestTest, UntrainedAndEmptyFitsPredictZero) {
  Mart untrained;
  EXPECT_EQ(untrained.Predict(std::vector<double>{1.0, 2.0}), 0.0);
  EXPECT_EQ(untrained.PredictReference({1.0, 2.0}), 0.0);

  Mart empty_fit;
  empty_fit.Fit(Dataset{});
  EXPECT_EQ(empty_fit.Predict(std::vector<double>{1.0, 2.0}), 0.0);
  EXPECT_EQ(empty_fit.compiled().NumTrees(), 0u);
}

// The estimator-level golden sweep: every (OpType, Resource) model set of a
// trained estimator — plus the constant-fallback operators without one —
// must produce bit-identical scalar, reference, and batched estimates.
class EstimatorSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = GenerateDatabase(TpchSchema(), 1.0, 1.0, 42).release();
    Rng rng(7);
    auto queries = GenerateTpchWorkload(80, &rng, db_);
    workload_ =
        new std::vector<ExecutedQuery>(RunWorkload(db_, queries));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static void SweepAllModelSets(const ResourceEstimator& est) {
    const std::vector<FeatureVector> raws = RandomFeatureVectors(64, 1234);
    std::vector<const FeatureVector*> ptrs;
    for (const auto& v : raws) ptrs.push_back(&v);
    std::vector<double> batched(raws.size());

    size_t sets_seen = 0, fallbacks_seen = 0;
    for (int op = 0; op < kNumOpTypes; ++op) {
      for (int r = 0; r < kNumResources; ++r) {
        const OpType op_type = static_cast<OpType>(op);
        const Resource resource = static_cast<Resource>(r);
        const OperatorModelSet* set = est.ModelsFor(op_type, resource);
        est.EstimateBatchFromFeatures(op_type, ptrs.data(), ptrs.size(),
                                      resource, batched.data());
        for (size_t i = 0; i < raws.size(); ++i) {
          const double scalar =
              est.EstimateFromFeatures(op_type, raws[i], resource);
          EXPECT_EQ(batched[i], scalar)
              << "op " << op << " resource " << r << " row " << i;
          if (set != nullptr) {
            const CombinedModel* chosen = set->Select(raws[i]);
            ASSERT_NE(chosen, nullptr);
            EXPECT_EQ(scalar, chosen->PredictReference(raws[i]))
                << "op " << op << " resource " << r << " row " << i;
          }
        }
        (set != nullptr ? sets_seen : fallbacks_seen)++;
      }
    }
    // The sweep must actually cover trained model sets AND constant
    // fallbacks, or the golden test is vacuous.
    EXPECT_GT(sets_seen, 0u);
    EXPECT_GT(fallbacks_seen, 0u);
  }

  static Database* db_;
  static std::vector<ExecutedQuery>* workload_;
};

Database* EstimatorSweepTest::db_ = nullptr;
std::vector<ExecutedQuery>* EstimatorSweepTest::workload_ = nullptr;

TEST_F(EstimatorSweepTest, MartModelsBitIdentical) {
  TrainOptions options;
  options.mart.num_trees = 60;
  options.train_threads = 0;
  SweepAllModelSets(ResourceEstimator::Train(*workload_, options));
}

TEST_F(EstimatorSweepTest, RegtreeModelsBitIdentical) {
  TrainOptions options;
  options.mart.num_trees = 60;
  options.mart.linear_leaves = true;  // REGTREE: linear-leaf trees
  options.train_threads = 0;
  SweepAllModelSets(ResourceEstimator::Train(*workload_, options));
}

TEST_F(EstimatorSweepTest, DeserializedEstimatorStaysBitIdentical) {
  TrainOptions options;
  options.mart.num_trees = 40;
  options.train_threads = 0;
  const ResourceEstimator trained =
      ResourceEstimator::Train(*workload_, options);
  ResourceEstimator restored;
  ASSERT_TRUE(restored.Deserialize(trained.Serialize()));

  const std::vector<FeatureVector> raws = RandomFeatureVectors(32, 555);
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      for (const auto& v : raws) {
        EXPECT_EQ(restored.EstimateFromFeatures(static_cast<OpType>(op), v,
                                                static_cast<Resource>(r)),
                  trained.EstimateFromFeatures(static_cast<OpType>(op), v,
                                               static_cast<Resource>(r)));
      }
    }
  }
}

// --- Kernel edge cases: every oddly-shaped batch a caller can legally ---
// --- construct, through all kernels via the PredictBatchWith seam.     ---
// On hosts without AVX2/AVX-512 the vector requests fall back to scalar
// and those comparisons are trivially true — the suite still runs.

constexpr ForestKernel kAllKernels[] = {
    ForestKernel::kScalar, ForestKernel::kAvx2, ForestKernel::kAvx512};

// Row counts straddling both lockstep widths (8 and 16) and both kernels'
// interleaved 32-row blocks (AVX2 4x8, AVX-512 2x16): empty, single-row,
// exact multiples, one-off each side. Every lane-masking and tail path
// must stay bit-identical to the legacy reference walk.
TEST(CompiledForestEdgeTest, RowCountsAroundLockstepWidth) {
  for (const bool linear_leaves : {false, true}) {
    const size_t kFeatures = 5;
    Dataset train = MakeData(1500, kFeatures, 211);
    MartParams params;
    params.num_trees = 60;
    params.linear_leaves = linear_leaves;
    Mart mart(params);
    mart.Fit(train);

    Rng rng(17);
    for (const size_t num_rows :
         {0u, 1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 65u}) {
      std::vector<double> matrix(num_rows * kFeatures);
      for (auto& v : matrix) v = rng.Uniform(-50.0, 4000.0);
      std::vector<double> out(num_rows, -1.0);
      for (const ForestKernel kernel : kAllKernels) {
        std::fill(out.begin(), out.end(), -1.0);
        mart.compiled().PredictBatchWith(kernel, matrix.data(), num_rows,
                                         kFeatures, out.data());
        for (size_t i = 0; i < num_rows; ++i) {
          std::vector<double> row(matrix.begin() + i * kFeatures,
                                  matrix.begin() + (i + 1) * kFeatures);
          EXPECT_EQ(out[i], mart.PredictReference(row))
              << "rows=" << num_rows << " row " << i << " kernel "
              << static_cast<int>(kernel)
              << (linear_leaves ? " REGTREE" : " MART");
        }
      }
    }
  }
}

// stride > features the model references: the extra columns are poisoned
// with values that would corrupt any traversal that touched them (NaN
// fails every ordered compare toward the leaf-bound direction). The
// contract is that traversal never reads past the fitted features.
TEST(CompiledForestEdgeTest, StrideWiderThanReferencedFeatures) {
  const size_t kFeatures = 4;
  Dataset train = MakeData(1200, kFeatures, 331);
  MartParams params;
  params.num_trees = 50;
  Mart mart(params);
  mart.Fit(train);
  ASSERT_LE(mart.compiled().NumFeaturesReferenced(), kFeatures);

  const size_t kStride = 11;
  const size_t kRows = 37;  // not a lockstep multiple either
  Rng rng(23);
  std::vector<double> wide(kRows * kStride,
                           std::numeric_limits<double>::quiet_NaN());
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < kRows; ++i) {
    std::vector<double> x(kFeatures);
    for (auto& v : x) v = rng.Uniform(0.0, 2000.0);
    std::copy(x.begin(), x.end(), wide.begin() + i * kStride);
    for (size_t p = kFeatures; p < kStride; ++p) {
      wide[i * kStride + p] = (p % 2 != 0)
                                  ? std::numeric_limits<double>::quiet_NaN()
                                  : -1e300;
    }
    rows.push_back(std::move(x));
  }
  std::vector<double> out(kRows);
  for (const ForestKernel kernel : kAllKernels) {
    std::fill(out.begin(), out.end(), -1.0);
    mart.compiled().PredictBatchWith(kernel, wide.data(), kRows, kStride,
                                     out.data());
    for (size_t i = 0; i < kRows; ++i) {
      EXPECT_EQ(out[i], mart.PredictReference(rows[i]))
          << "row " << i << " kernel " << static_cast<int>(kernel);
    }
  }
}

// An empty forest (no trees at all) predicts f0 for every row, from both
// kernels, at any stride — and references no features.
TEST(CompiledForestEdgeTest, EmptyForestPredictsF0) {
  CompiledForest forest;
  forest.Compile(1.25, 0.1, {});
  EXPECT_TRUE(forest.empty());
  EXPECT_EQ(forest.NumTrees(), 0u);
  EXPECT_EQ(forest.NumFeaturesReferenced(), 0u);

  const std::vector<double> rows = {3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  EXPECT_EQ(forest.Predict(rows.data(), 2), 1.25);
  for (const ForestKernel kernel : kAllKernels) {
    std::vector<double> out(3, -1.0);
    forest.PredictBatchWith(kernel, rows.data(), out.size(), 2, out.data());
    for (const double v : out) EXPECT_EQ(v, 1.25);
  }
}

// Leaf-only trees (depth 0 — a constant per tree, the shape a degenerate
// fit produces) and node-less trees (which compile to a zero-value leaf)
// take zero traversal steps: no feature is ever read, so the batch runs
// correctly even though the forest references no input columns.
TEST(CompiledForestEdgeTest, LeafOnlyAndNodelessTreesAccumulateConstants) {
  auto leaf_tree = [](float value) {
    RegressionTree tree;
    TreeNode leaf;
    leaf.feature = -1;
    leaf.value = value;
    tree.mutable_nodes()->push_back(leaf);
    return tree;
  };
  std::vector<RegressionTree> trees;
  trees.push_back(leaf_tree(2.5f));
  trees.push_back(leaf_tree(-1.5f));
  trees.push_back(RegressionTree{});  // no nodes: compiles to a zero leaf
  trees.push_back(leaf_tree(0.25f));

  const double f0 = 0.75, lr = 0.3;
  CompiledForest forest;
  forest.Compile(f0, lr, trees);
  EXPECT_EQ(forest.NumTrees(), 4u);
  EXPECT_EQ(forest.NumFeaturesReferenced(), 0u);

  // Same accumulation the kernels perform: scalar, in boosting order.
  double expected = f0;
  for (const float leaf : {2.5f, -1.5f, 0.0f, 0.25f}) {
    expected += lr * static_cast<double>(leaf);
  }
  const std::vector<double> rows = {9.0, 8.0, 7.0, 6.0};
  EXPECT_EQ(forest.Predict(rows.data(), 1), expected);
  for (const ForestKernel kernel : kAllKernels) {
    for (const size_t num_rows : {1u, 4u, 9u}) {
      std::vector<double> out(num_rows, -1.0);
      // stride 0: every row aliases the same storage; legal because a
      // zero-step walk reads nothing.
      forest.PredictBatchWith(kernel, rows.data(), num_rows, 0, out.data());
      for (const double v : out) EXPECT_EQ(v, expected);
    }
  }
}

// The dispatch ladder and its names stay consistent: the active kernel is
// one of the three, its name matches, and the lockstep width it reports is
// the width the kernels actually walk (16 only for AVX-512).
TEST(CompiledForestDispatchTest, ActiveKernelNameAndWidthAgree) {
  const ForestKernel active = CompiledForest::ActiveKernel();
  const std::string name = CompiledForest::ActiveKernelName();
  switch (active) {
    case ForestKernel::kAvx512:
      EXPECT_TRUE(CompiledForest::Avx512Supported());
      EXPECT_EQ(name, "avx512");
      EXPECT_EQ(CompiledForest::ActiveLockstepWidth(), 16u);
      break;
    case ForestKernel::kAvx2:
      EXPECT_TRUE(CompiledForest::Avx2Supported());
      EXPECT_TRUE(name == "avx2");
      EXPECT_EQ(CompiledForest::ActiveLockstepWidth(), 8u);
      break;
    case ForestKernel::kScalar:
      EXPECT_TRUE(name == "scalar" || name == "scalar-exact");
      EXPECT_EQ(CompiledForest::ActiveLockstepWidth(), 8u);
      break;
  }
  // AVX-512 support implies AVX2 support on every real CPU; the dispatch
  // ladder relies on that ordering.
  if (CompiledForest::Avx512Supported()) {
    EXPECT_TRUE(CompiledForest::Avx2Supported());
  }
}

// Direct AVX-512-vs-reference oracle over a large random batch (on hosts
// without AVX-512 the request falls back to scalar and the test still
// verifies the fallback): every row bit-identical, both tree flavors.
TEST(CompiledForestDispatchTest, Avx512MatchesReferenceBitwise) {
  for (const bool linear_leaves : {false, true}) {
    const size_t kFeatures = 7;
    Dataset train = MakeData(2000, kFeatures, 313);
    MartParams params;
    params.num_trees = 90;
    params.linear_leaves = linear_leaves;
    Mart mart(params);
    mart.Fit(train);

    Rng rng(23);
    const size_t kRows = 333;  // 10x32 + 16-wide remainder + scalar tail.
    std::vector<double> matrix(kRows * kFeatures);
    for (auto& v : matrix) v = rng.Uniform(-200.0, 6000.0);
    std::vector<double> out(kRows, -1.0);
    mart.compiled().PredictBatchWith(ForestKernel::kAvx512, matrix.data(),
                                     kRows, kFeatures, out.data());
    for (size_t i = 0; i < kRows; ++i) {
      std::vector<double> row(matrix.begin() + i * kFeatures,
                              matrix.begin() + (i + 1) * kFeatures);
      EXPECT_EQ(out[i], mart.PredictReference(row)) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace resest
