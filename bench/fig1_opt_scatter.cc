// Figure 1: optimizer estimates can incur significant errors.
//
// TPC-H queries on skewed data (z=1, SF 1..10) keeping only queries whose
// per-node cardinality estimates are within 90%-110% of the truth, so the
// remaining error is attributable to the cost model itself, not cardinality
// estimation. Prints (optimizer CPU estimate x LSQ alpha, actual CPU) pairs
// and the fitted regression slope.
#include <cstdio>

#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  std::printf("=== Figure 1: optimizer CPU estimate vs actual CPU ===\n");
  std::printf("(skewed TPC-H z=1, SF 1-10; only queries with all node\n");
  std::printf(" cardinality estimates within 90%%-110%% of the truth)\n");

  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/1.0, 42);

  // Filter per the paper: every node's estimate within [0.9, 1.1] x actual.
  std::vector<const ExecutedQuery*> kept;
  for (const auto& eq : corpus.queries) {
    bool ok = true;
    eq.plan.root->Visit([&](const PlanNode* n) {
      const double act = std::max(1.0, static_cast<double>(n->actual.rows_out));
      const double est = std::max(1.0, n->est.rows_out);
      const double ratio = est / act;
      if (ratio < 0.9 || ratio > 1.1) ok = false;
    });
    if (ok) kept.push_back(&eq);
  }
  std::printf("queries kept: %zu of %zu\n", kept.size(), corpus.queries.size());

  // Least-squares mapping of optimizer cost units to CPU time (the paper's
  // regression line).
  double num = 0, den = 0;
  for (const auto* eq : kept) {
    double cost = 0;
    eq->plan.root->Visit([&](const PlanNode* n) { cost += n->est.cpu_cost; });
    num += cost * eq->plan.TotalActualCpu();
    den += cost * cost;
  }
  const double alpha = den > 0 ? num / den : 0.0;
  std::printf("fitted regression slope alpha = %.4f\n\n", alpha);

  std::printf("%14s %14s %10s\n", "opt_est (ms)", "actual (ms)", "ratio");
  std::vector<double> est, act;
  for (const auto* eq : kept) {
    double cost = 0;
    eq->plan.root->Visit([&](const PlanNode* n) { cost += n->est.cpu_cost; });
    const double mapped = alpha * cost;
    const double actual = eq->plan.TotalActualCpu();
    est.push_back(std::max(0.01, mapped));
    act.push_back(actual);
    std::printf("%14.1f %14.1f %10.2f\n", mapped, actual,
                RatioError(mapped, actual));
  }
  if (!est.empty()) {
    const RatioBuckets b = ComputeRatioBuckets(est, act);
    std::printf("\nEven with the error-minimizing mapping: L1=%.2f, "
                "only %.1f%% within ratio 1.5 (paper: significant errors "
                "remain after the regression-line mapping)\n",
                L1RelativeError(est, act), 100.0 * b.le_1_5);
  }
  return 0;
}
