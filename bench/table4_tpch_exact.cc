// Table 4: training and testing on TPC-H with exact input features — CPU.
//
// 80/20 split of the randomly parameterized TPC-H workload (skew z=2,
// SF 1..10); all six statistical techniques compared on the paper's two
// error metrics.
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> train, test;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusMove(std::move(corpus), 5, &train, &test, &dbs);

  const auto scores = EvaluateTechniques(
      {"[8]", "LINEAR", "MART", "SVM(PK)", "REGTREE", "SCALING"}, train, test,
      Resource::kCpu, FeatureMode::kExact);
  PrintScoreTable(
      "Table 4: Training and Testing on TPC-H (exact features, CPU)", scores);
  return 0;
}
