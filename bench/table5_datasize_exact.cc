// Table 5: training on TPC-H, testing on different data sizes — CPU, exact
// features. Two directions: train on small databases (SF<=4) and test on
// large (SF>=6), then the reverse.
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> small, large;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusBySf(std::move(corpus), 4.0, &small, &large, &dbs);

  const std::vector<std::string> techniques = {"[8]",     "LINEAR",  "MART",
                                               "SVM(PK)", "REGTREE", "SCALING"};
  PrintScoreTable(
      "Table 5a: Train small (SF<=4), Test Large (SF>=6) (exact features, CPU)",
      EvaluateTechniques(techniques, small, large, Resource::kCpu,
                         FeatureMode::kExact));
  PrintScoreTable(
      "Table 5b: Train large (SF>=6), Test Small (SF<=4) (exact features, CPU)",
      EvaluateTechniques(techniques, large, small, Resource::kCpu,
                         FeatureMode::kExact));
  return 0;
}
