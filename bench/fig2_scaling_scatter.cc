// Figure 2: statistical techniques can improve estimates significantly.
//
// Trains the SCALING model on ~80% of a large skewed TPC-H workload and
// prints (estimate, actual) CPU pairs for the disjoint test queries — the
// paper's near-diagonal scatter.
#include <cstdio>

#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  std::printf("=== Figure 2: SCALING estimates vs actual CPU (TPC-H) ===\n");
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> train, test;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusMove(std::move(corpus), 5, &train, &test, &dbs);
  std::printf("train=%zu test=%zu\n\n", train.size(), test.size());

  const auto scaling = TrainTechnique("SCALING", train, FeatureMode::kExact);
  std::printf("%14s %14s %10s\n", "estimate (ms)", "actual (ms)", "ratio");
  std::vector<double> est, act;
  for (const auto& eq : test) {
    const double e = std::max(0.01, scaling->Estimate(eq, Resource::kCpu));
    const double a = ActualUsage(eq, Resource::kCpu);
    est.push_back(e);
    act.push_back(a);
    std::printf("%14.1f %14.1f %10.2f\n", e, a, RatioError(e, a));
  }
  const RatioBuckets b = ComputeRatioBuckets(est, act);
  std::printf("\nL1=%.2f, %.1f%% within ratio 1.5 (paper: estimates "
              "approximate the diagonal closely, no large-error queries)\n",
              L1RelativeError(est, act), 100.0 * b.le_1_5);
  return 0;
}
