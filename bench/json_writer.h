// Minimal machine-readable bench output: a flat, insertion-ordered JSON
// object written to a BENCH_*.json file so CI can archive a performance
// trajectory alongside the human-readable stdout tables.
#ifndef RESEST_BENCH_JSON_WRITER_H_
#define RESEST_BENCH_JSON_WRITER_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace resest::bench {

/// Builds a flat JSON object field by field and writes it in one shot.
/// Values are rendered on insertion; doubles use %.17g so readers recover
/// the exact measurement.
class JsonWriter {
 public:
  void Number(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    fields_.emplace_back(key, buf);
  }
  void Int(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Bool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n  \"" + Escape(fields_[i].first) + "\": " + fields_[i].second;
    }
    out += "\n}\n";
    return out;
  }

  /// Writes the object to `path`; returns false (and prints a warning) on
  /// I/O failure so benches can keep their exit code for correctness only.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = ToString();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace resest::bench

#endif  // RESEST_BENCH_JSON_WRITER_H_
