// Table 8: training on TPC-H, testing on different data sizes — CPU,
// optimizer-estimated features.
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> small, large;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusBySf(std::move(corpus), 4.0, &small, &large, &dbs);

  const std::vector<std::string> techniques = {
      "OPT", "[8]", "LINEAR", "MART", "SVM(PK)", "REGTREE", "SCALING"};
  PrintScoreTable(
      "Table 8a: Train small (SF<=4), Test Large (SF>=6) (estimated features, CPU)",
      EvaluateTechniques(techniques, small, large, Resource::kCpu,
                         FeatureMode::kEstimated));
  PrintScoreTable(
      "Table 8b: Train large (SF>=6), Test Small (SF<=4) (estimated features, CPU)",
      EvaluateTechniques(techniques, large, small, Resource::kCpu,
                         FeatureMode::kEstimated));
  return 0;
}
