// Figure 8: evaluating candidate scaling functions for the CPU consumption
// of index nested loop joins.
//
// Sweeps the outer cardinality against a fixed inner table and compares
// C_outer x log2(C_inner) against alternative forms (linear in the outer,
// product of both), matching the paper's three-panel comparison.
#include <cstdio>

#include "src/core/scaling_lab.h"
#include "src/workload/schemas.h"

using namespace resest;

int main() {
  std::printf("=== Figure 8: scaling-function selection for INLJ CPU ===\n");
  // Both inputs must vary for the candidates to be distinguishable: the
  // outer cardinality is swept within each database, and the inner table
  // size varies across scale factors.
  std::vector<SweepPoint> sweep;
  for (double sf : {1.0, 2.0, 4.0, 8.0}) {
    auto db = GenerateDatabase(TpchSchema(), sf, 1.0, 42);
    for (const auto& p : SweepInljCpu(*db, 15)) sweep.push_back(p);
  }

  std::printf("\nsweep observations (C_outer, inner rows, CPU):\n");
  for (size_t i = 0; i < sweep.size(); i += 4) {
    std::printf("  %10.0f %10.0f %12.1f\n", sweep[i].a, sweep[i].b,
                sweep[i].usage);
  }

  const auto fits = SelectScalingFn(sweep, /*include_two_input=*/true);
  std::printf("\n%-12s %12s %14s\n", "candidate", "alpha", "L2 error");
  for (const auto& f : fits) {
    std::printf("%-12s %12.6g %14.1f\n", ScalingFnName(f.fn), f.alpha,
                f.l2_error);
  }

  ScalingFit alogb, linear, product;
  for (const auto& f : fits) {
    if (f.fn == ScalingFn::kALogB) alogb = f;
    if (f.fn == ScalingFn::kLinear) linear = f;
    if (f.fn == ScalingFn::kProduct) product = f;
  }
  std::printf("\n%10s %12s %16s %12s %12s\n", "C_outer", "observed",
              "a*log2(b)-fit", "linear-fit", "a*b-fit");
  for (size_t i = 0; i < sweep.size(); i += 4) {
    std::printf("%10.0f %12.1f %16.1f %12.1f %12.1f\n", sweep[i].a,
                sweep[i].usage,
                alogb.alpha * EvalScaling(ScalingFn::kALogB, sweep[i].a, sweep[i].b),
                linear.alpha * EvalScaling(ScalingFn::kLinear, sweep[i].a),
                product.alpha * EvalScaling(ScalingFn::kProduct, sweep[i].a,
                                            sweep[i].b));
  }
  std::printf("\nselected: %s\n", ScalingFnName(fits.front().fn));
  std::printf("(paper: CINOUTER x log2(CININNER) fits better than the "
              "alternatives)\n");
  return 0;
}
