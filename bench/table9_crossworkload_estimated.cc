// Table 9: training on TPC-H, testing on TPC-DS / Real-1 / Real-2 — CPU,
// optimizer-estimated features (the paper's hardest, most practical setting).
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus tpch = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  Corpus tpcds = BuildTpcdsCorpus(100, 77);
  Corpus real1 = BuildReal1Corpus(222, 78);
  Corpus real2 = BuildReal2Corpus(887, 79);

  const std::vector<std::string> techniques = {
      "OPT", "[8]", "LINEAR", "MART", "SVM(PK)", "REGTREE", "SCALING"};
  std::vector<TechniqueScore> s_ds, s_r1, s_r2;
  for (const auto& name : techniques) {
    const auto est = TrainTechnique(name, tpch.queries, FeatureMode::kEstimated);
    s_ds.push_back(ScoreEstimator(*est, tpcds.queries, Resource::kCpu));
    s_r1.push_back(ScoreEstimator(*est, real1.queries, Resource::kCpu));
    s_r2.push_back(ScoreEstimator(*est, real2.queries, Resource::kCpu));
  }
  PrintScoreTable("Table 9a: Train TPC-H, Test TPC-DS (estimated features, CPU)", s_ds);
  PrintScoreTable("Table 9b: Train TPC-H, Test Real-1 (estimated features, CPU)", s_r1);
  PrintScoreTable("Table 9c: Train TPC-H, Test Real-2 (estimated features, CPU)", s_r2);
  return 0;
}
