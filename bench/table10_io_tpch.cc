// Table 10: training and testing on TPC-H — logical I/O operations,
// optimizer-estimated features. The paper reports the four best models.
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> train, test;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusMove(std::move(corpus), 5, &train, &test, &dbs);

  const auto scores =
      EvaluateTechniques({"[8]", "LINEAR", "SVM(RBF)", "SCALING"}, train, test,
                         Resource::kIo, FeatureMode::kEstimated);
  PrintScoreTable("Table 10: Training and Testing on TPC-H (I/O operations)",
                  scores);
  return 0;
}
