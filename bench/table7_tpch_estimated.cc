// Table 7: training and testing on TPC-H with optimizer-estimated input
// features — CPU. Adds the OPT competitor; also tests each technique's
// ability to compensate for cardinality-estimation bias.
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> train, test;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusMove(std::move(corpus), 5, &train, &test, &dbs);

  const auto scores = EvaluateTechniques(
      {"OPT", "[8]", "LINEAR", "MART", "SVM(PK)", "REGTREE", "SCALING"}, train,
      test, Resource::kCpu, FeatureMode::kEstimated);
  PrintScoreTable(
      "Table 7: Training and Testing on TPC-H (optimizer-estimated features, CPU)",
      scores);
  return 0;
}
