// Raw model-inference throughput: the legacy per-tree scalar walk vs. the
// compiled SoA forest, scalar and batched (tree-outer/row-inner), in
// rows/sec on a paper-sized ensemble (~150 trees, <=10 leaves each).
//
// With the async pipeline and estimate cache landed, model inference is the
// dominant cache-miss cost in serving; this bench tracks that hot path and
// emits machine-readable BENCH_inference.json for the perf trajectory.
// Exit code covers correctness only (compiled paths must be bit-identical
// to the legacy walk); timings never fail the run, so tiny CI smoke
// iterations stay meaningful.
//
// Environment knobs:
//   RESEST_INFER_TREES   ensemble size            (default 150)
//   RESEST_INFER_ROWS    rows per pass            (default 100000)
//   RESEST_INFER_PASSES  timed passes per path    (default 3; best is kept)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/experiment_common.h"
#include "bench/json_writer.h"
#include "src/ml/mart.h"

using namespace resest;

namespace {

constexpr size_t kFeatures = 8;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void PrintRow(const char* label, double rows_per_sec, double baseline) {
  std::printf("%-26s %14.0f rows/s %9.2fx\n", label, rows_per_sec,
              rows_per_sec / baseline);
}

}  // namespace

int main() {
  const int num_trees = bench::EnvInt("RESEST_INFER_TREES", 150);
  const int num_rows = bench::EnvInt("RESEST_INFER_ROWS", 100000);
  const int num_passes = bench::EnvInt("RESEST_INFER_PASSES", 3);

  std::printf("== inference throughput: %d-tree MART, %d rows, best of %d "
              "passes ==\n\n",
              num_trees, num_rows, num_passes);

  // Paper-sized model: ~150 trees of <=10 leaves over operator-like curves.
  Rng rng(11);
  Dataset train;
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> x(kFeatures);
    for (auto& v : x) v = rng.Uniform(1.0, 10000.0);
    const double y = x[0] * std::log2(x[0]) + 0.01 * x[1] * x[2] +
                     rng.Gaussian(0.0, 10.0);
    train.Add(std::move(x), y);
  }
  MartParams params;
  params.num_trees = num_trees;
  Mart mart(params);
  mart.Fit(train);

  // Row set: contiguous matrix (batched path) + per-row vectors (legacy).
  const size_t n = static_cast<size_t>(num_rows);
  std::vector<double> matrix(n * kFeatures);
  std::vector<std::vector<double>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double>& x = rows[i];
    x.resize(kFeatures);
    for (size_t j = 0; j < kFeatures; ++j) {
      x[j] = rng.Uniform(1.0, 12000.0);
      matrix[i * kFeatures + j] = x[j];
    }
  }

  std::vector<double> legacy(n), scalar(n), batched(n);
  double legacy_sec = 1e100, scalar_sec = 1e100, batched_sec = 1e100;
  for (int pass = 0; pass < num_passes + 1; ++pass) {
    // Pass 0 is an untimed warm-up; afterwards keep each path's best time.
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) legacy[i] = mart.PredictReference(rows[i]);
    if (pass > 0) legacy_sec = std::min(legacy_sec, SecondsSince(start));

    start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) {
      scalar[i] = mart.Predict(matrix.data() + i * kFeatures, kFeatures);
    }
    if (pass > 0) scalar_sec = std::min(scalar_sec, SecondsSince(start));

    start = std::chrono::steady_clock::now();
    mart.compiled().PredictBatch(matrix.data(), n, kFeatures, batched.data());
    if (pass > 0) batched_sec = std::min(batched_sec, SecondsSince(start));
  }

  size_t mismatches = 0;
  for (size_t i = 0; i < n; ++i) {
    if (scalar[i] != legacy[i] || batched[i] != legacy[i]) ++mismatches;
  }

  const double dn = static_cast<double>(n);
  std::printf("%-26s %14s %10s\n", "path", "throughput", "speedup");
  PrintRow("legacy per-tree scalar", dn / legacy_sec, dn / legacy_sec);
  PrintRow("compiled scalar", dn / scalar_sec, dn / legacy_sec);
  PrintRow("compiled batched", dn / batched_sec, dn / legacy_sec);
  std::printf("\nbit-identical to legacy: %s (%zu/%zu mismatches)\n",
              mismatches == 0 ? "yes" : "NO", mismatches, n);

  bench::JsonWriter json;
  json.Str("bench", "inference_throughput");
  json.Int("num_trees", num_trees);
  json.Int("rows", num_rows);
  json.Int("passes", num_passes);
  json.Number("legacy_rows_per_sec", dn / legacy_sec);
  json.Number("compiled_scalar_rows_per_sec", dn / scalar_sec);
  json.Number("compiled_batched_rows_per_sec", dn / batched_sec);
  json.Number("batched_speedup_vs_legacy", legacy_sec / batched_sec);
  json.Bool("bit_identical", mismatches == 0);
  json.WriteFile("BENCH_inference.json");

  return mismatches == 0 ? 0 : 1;
}
