// Figure 7: evaluating candidate scaling functions for sort-operator CPU.
//
// Sweeps the sort input count (the paper's "SELECT * FROM lineitem WHERE
// l_orderkey <= t1 ORDER BY Random()"), fits every candidate form by least
// squares, and shows that n log n fits best — quadratic in particular is far
// worse, matching the paper's side-by-side plots.
#include <cstdio>

#include "src/core/scaling_lab.h"
#include "src/workload/schemas.h"

using namespace resest;

int main() {
  std::printf("=== Figure 7: scaling-function selection for Sort CPU ===\n");
  auto db = GenerateDatabase(TpchSchema(), 4.0, 1.0, 42);
  const auto sweep = SweepSortCpu(*db, 40);

  std::printf("\nsweep observations (CIN, CPU):\n");
  for (size_t i = 0; i < sweep.size(); i += 4) {
    std::printf("  %10.0f %12.1f\n", sweep[i].a, sweep[i].usage);
  }

  const auto fits = SelectScalingFn(sweep, /*include_two_input=*/false);
  std::printf("\n%-12s %12s %14s\n", "candidate", "alpha", "L2 error");
  for (const auto& f : fits) {
    std::printf("%-12s %12.6g %14.1f\n", ScalingFnName(f.fn), f.alpha,
                f.l2_error);
  }
  std::printf("\nselected: %s (paper: n log n fits the sort CPU curve with "
              "high accuracy; quadratic overshoots badly)\n",
              ScalingFnName(fits.front().fn));

  // The paper's two-panel comparison: predicted vs observed for nlogn and
  // quadratic.
  ScalingFit nlogn, quad;
  for (const auto& f : fits) {
    if (f.fn == ScalingFn::kNLogN) nlogn = f;
    if (f.fn == ScalingFn::kQuadratic) quad = f;
  }
  std::printf("\n%10s %12s %14s %14s\n", "CIN", "observed", "nlogn-fit",
              "quadratic-fit");
  for (size_t i = 0; i < sweep.size(); i += 4) {
    std::printf("%10.0f %12.1f %14.1f %14.1f\n", sweep[i].a, sweep[i].usage,
                nlogn.alpha * EvalScaling(ScalingFn::kNLogN, sweep[i].a),
                quad.alpha * EvalScaling(ScalingFn::kQuadratic, sweep[i].a));
  }
  return 0;
}
