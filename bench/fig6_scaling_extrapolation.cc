// Figure 6: re-running the Figure 3 experiment with MART + scaling restores
// accuracy for scans far beyond the training data.
#include <cstdio>

#include "bench/experiment_common.h"
#include "src/core/combined_model.h"

using namespace resest;
using namespace resest::bench;

namespace {

void CollectScans(const std::vector<ExecutedQuery>& queries,
                  std::vector<FeatureVector>* rows, std::vector<double>* cpu) {
  for (const auto& eq : queries) {
    eq.plan.root->Visit([&](const PlanNode* n) {
      if (n->type != OpType::kTableScan) return;
      rows->push_back(
          ExtractFeatures(*n, nullptr, *eq.database, FeatureMode::kExact));
      cpu->push_back(n->actual.cpu);
    });
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 6: MART+scaling scan-CPU model trained on SF 1-4, "
              "tested on SF 6-10 ===\n");
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> small, large;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusBySf(std::move(corpus), 4.0, &small, &large, &dbs);

  std::vector<FeatureVector> train_rows, test_rows;
  std::vector<double> train_cpu, test_cpu;
  CollectScans(small, &train_rows, &train_cpu);
  CollectScans(large, &test_rows, &test_cpu);
  std::printf("train scans=%zu (SF<=4), test scans=%zu (SF>=6)\n\n",
              train_rows.size(), test_rows.size());

  OperatorModelSet::TrainOptions options;  // scaling enabled (default)
  options.mart.num_trees = 300;
  const auto set = OperatorModelSet::Train(OpType::kTableScan, Resource::kCpu,
                                           train_rows, train_cpu, options);

  std::printf("%14s %14s %10s\n", "actual (ms)", "estimate (ms)", "est/act");
  std::vector<double> est, act;
  for (size_t i = 0; i < test_rows.size(); ++i) {
    const double e = std::max(0.01, set.Predict(test_rows[i]));
    est.push_back(e);
    act.push_back(test_cpu[i]);
    if (i % 7 == 0) {
      std::printf("%14.1f %14.1f %10.2f\n", test_cpu[i], e, e / test_cpu[i]);
    }
  }
  const RatioBuckets b = ComputeRatioBuckets(est, act);
  std::printf("\nL1=%.2f, within 1.5x: %.1f%%\n", L1RelativeError(est, act),
              100.0 * b.le_1_5);
  std::printf("(paper: combining MART with scaling retains in-range accuracy "
              "and generalizes to much larger scans)\n");
  return 0;
}
