// Table 13: MART training times for M=1K boosting iterations (10-leaf
// trees) as the number of training examples grows from 5K to 160K —
// including the time to serialize the resulting model, matching the paper's
// "reading in the training data and writing the output model" accounting.
//
// Also measures full-estimator training (every per-operator model set) in
// serial vs. fanned out over a thread pool: the ~dozens of
// OperatorModelSet::Train fits are independent, so parallel training must
// produce a byte-identical model store, only faster.
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/core/estimator.h"
#include "src/ml/mart.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

// Synthetic operator-style training data (9 features, non-linear target).
Dataset MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x(9);
    for (auto& v : x) v = rng.Uniform(1, 100000);
    const double y = 0.001 * x[0] + 0.1 * x[1] / (1 + x[2] * 1e-5) +
                     0.0002 * x[3] * std::log2(std::max(2.0, x[3])) +
                     rng.Gaussian(0, 10);
    d.Add(std::move(x), y);
  }
  return d;
}

}  // namespace

int main() {
  std::printf("=== Table 13: MART training time vs #training examples "
              "(M=1K boosting iterations, 10-leaf trees) ===\n\n");
  std::printf("%12s %16s %16s\n", "examples", "train time (s)", "model KB");
  for (size_t n : {5000u, 10000u, 20000u, 40000u, 80000u, 160000u}) {
    const Dataset data = MakeData(n, 7);
    MartParams params;
    params.num_trees = 1000;
    params.max_leaves = 10;
    Mart mart(params);
    const auto t0 = std::chrono::steady_clock::now();
    mart.Fit(data);
    const auto bytes = mart.Serialize();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count() /
        1000.0;
    std::printf("%12zu %16.2f %16.1f\n", n, secs,
                static_cast<double>(bytes.size()) / 1024.0);
  }
  std::printf("\n(paper: 2.6s at 5K examples to 36.8s at 160K; training cost "
              "is small and grows roughly linearly)\n");

  std::printf("\n=== ResourceEstimator::Train: serial vs. parallel "
              "per-operator fits ===\n\n");
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  Rng rng(7);
  const auto workload =
      RunWorkload(db.get(), GenerateTpchWorkload(200, &rng, db.get()));

  TrainOptions options;
  auto t0 = std::chrono::steady_clock::now();
  const ResourceEstimator serial = ResourceEstimator::Train(workload, options);
  const double serial_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  options.train_threads = 0;  // hardware concurrency
  t0 = std::chrono::steady_clock::now();
  const ResourceEstimator parallel =
      ResourceEstimator::Train(workload, options);
  const double parallel_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const bool identical = serial.Serialize() == parallel.Serialize();
  std::printf("%-24s %12s\n", "mode", "time (s)");
  std::printf("%-24s %12.2f\n", "serial", serial_sec);
  std::printf("%-24s %12.2f  (%u threads)\n", "parallel",
              parallel_sec, std::thread::hardware_concurrency());
  std::printf("\nspeedup: %.2fx, model stores byte-identical: %s\n",
              serial_sec / parallel_sec, identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
