// Shared corpus construction for the table/figure benchmarks.
//
// Mirrors the paper's experimental setup (Section 7): a TPC-H workload of
// randomly parameterized template queries executed on skewed databases of
// scale factors 1..10, plus TPC-DS / Real-1 / Real-2 test corpora for the
// cross-workload generalization experiments.
//
// Environment knobs:
//   RESEST_QUERIES  total TPC-H corpus size (default 1200; paper used 2500 —
//                   export RESEST_QUERIES=2500 for the full-size run)
#ifndef RESEST_BENCH_EXPERIMENT_COMMON_H_
#define RESEST_BENCH_EXPERIMENT_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/harness.h"
#include "src/workload/real_queries.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpcds_queries.h"
#include "src/workload/tpch_queries.h"

namespace resest::bench {

/// Databases plus the executed queries over them. The databases must outlive
/// the queries (ExecutedQuery holds a Database pointer).
struct Corpus {
  std::vector<std::unique_ptr<Database>> databases;
  std::vector<ExecutedQuery> queries;
};

/// Positive integer from the environment, or `fallback` if unset/invalid.
inline int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline int TotalTpchQueries() { return EnvInt("RESEST_QUERIES", 1200); }

/// The paper's TPC-H corpus: scale factors 1,2,4,6,8,10 with Zipf skew.
inline Corpus BuildTpchCorpus(int total_queries, double skew, uint64_t seed) {
  Corpus corpus;
  const double kScaleFactors[] = {1, 2, 4, 6, 8, 10};
  const int per_sf = std::max(1, total_queries / 6);
  Rng rng(seed);
  for (double sf : kScaleFactors) {
    auto db = GenerateDatabase(TpchSchema(), sf, skew, seed + static_cast<uint64_t>(sf));
    auto queries = GenerateTpchWorkload(per_sf, &rng, db.get());
    auto executed = RunWorkload(db.get(), queries, seed * 31 + static_cast<uint64_t>(sf));
    for (auto& eq : executed) corpus.queries.push_back(std::move(eq));
    corpus.databases.push_back(std::move(db));
  }
  return corpus;
}

/// Deterministic train/test split (every `test_every`-th query goes to the
/// test set); the corpus is consumed since plans are move-only.
inline void SplitCorpusMove(Corpus&& corpus, int test_every,
                            std::vector<ExecutedQuery>* train,
                            std::vector<ExecutedQuery>* test,
                            std::vector<std::unique_ptr<Database>>* databases) {
  for (size_t i = 0; i < corpus.queries.size(); ++i) {
    auto& eq = corpus.queries[i];
    if (static_cast<int>(i % static_cast<size_t>(test_every)) == 0) {
      test->push_back(std::move(eq));
    } else {
      train->push_back(std::move(eq));
    }
  }
  for (auto& db : corpus.databases) databases->push_back(std::move(db));
}

/// Split by scale factor (paper Table 5/8/11: train small / test large).
inline void SplitCorpusBySf(Corpus&& corpus, double sf_threshold,
                            std::vector<ExecutedQuery>* small,
                            std::vector<ExecutedQuery>* large,
                            std::vector<std::unique_ptr<Database>>* databases) {
  for (auto& eq : corpus.queries) {
    if (eq.scale_factor <= sf_threshold) {
      small->push_back(std::move(eq));
    } else {
      large->push_back(std::move(eq));
    }
  }
  for (auto& db : corpus.databases) databases->push_back(std::move(db));
}

/// TPC-DS test corpus (~100 queries, Section 7 "Datasets & Workloads" (1)).
inline Corpus BuildTpcdsCorpus(int count, uint64_t seed) {
  Corpus corpus;
  auto db = GenerateDatabase(TpcdsSchema(), 8.0, 1.0, seed);
  Rng rng(seed + 1);
  auto queries = GenerateTpcdsWorkload(count, &rng, db.get());
  corpus.queries = RunWorkload(db.get(), queries, seed + 2);
  corpus.databases.push_back(std::move(db));
  return corpus;
}

/// Real-1 test corpus (222 distinct decision-support queries).
inline Corpus BuildReal1Corpus(int count, uint64_t seed) {
  Corpus corpus;
  auto db = GenerateDatabase(Real1Schema(), 5.0, 1.0, seed);
  Rng rng(seed + 1);
  auto queries = GenerateReal1Workload(count, &rng);
  corpus.queries = RunWorkload(db.get(), queries, seed + 2);
  corpus.databases.push_back(std::move(db));
  return corpus;
}

/// Real-2 test corpus (887 deeper queries on a larger database).
inline Corpus BuildReal2Corpus(int count, uint64_t seed) {
  Corpus corpus;
  auto db = GenerateDatabase(Real2Schema(), 6.0, 1.0, seed);
  Rng rng(seed + 1);
  auto queries = GenerateReal2Workload(count, &rng);
  corpus.queries = RunWorkload(db.get(), queries, seed + 2);
  corpus.databases.push_back(std::move(db));
  return corpus;
}

}  // namespace resest::bench

#endif  // RESEST_BENCH_EXPERIMENT_COMMON_H_
