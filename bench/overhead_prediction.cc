// Section 7.3: prediction cost and memory requirements.
//
// Measures the per-call latency of evaluating a trained MART model
// (paper: ~0.5 us/call, negligible next to ~50 ms query optimization) and
// the serialized model sizes (paper: <=130 B/tree, ~127 KB per 1K-tree
// model, a few MB for the full model collection).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/estimator.h"
#include "src/ml/mart.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

Dataset MakeData(size_t n) {
  Rng rng(3);
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> x(9);
    for (auto& v : x) v = rng.Uniform(1, 100000);
    d.Add(std::move(x), rng.Uniform(0, 1000));
  }
  return d;
}

void BM_MartPredict1KTrees(benchmark::State& state) {
  const Dataset data = MakeData(5000);
  MartParams params;
  params.num_trees = 1000;
  Mart mart(params);
  mart.Fit(data);
  const std::vector<double> x = data.x[42];
  for (auto _ : state) {
    benchmark::DoNotOptimize(mart.Predict(x));
  }
}
BENCHMARK(BM_MartPredict1KTrees);

void BM_MartPredict150Trees(benchmark::State& state) {
  const Dataset data = MakeData(5000);
  MartParams params;
  params.num_trees = 150;
  Mart mart(params);
  mart.Fit(data);
  const std::vector<double> x = data.x[42];
  for (auto _ : state) {
    benchmark::DoNotOptimize(mart.Predict(x));
  }
}
BENCHMARK(BM_MartPredict150Trees);

void BM_EstimateWholeQuery(benchmark::State& state) {
  static auto db = GenerateDatabase(TpchSchema(), 1.0, 1.0, 42);
  static auto workload = [] {
    Rng rng(7);
    auto queries = GenerateTpchWorkload(150, &rng, db.get());
    return RunWorkload(db.get(), queries);
  }();
  static const ResourceEstimator est = [] {
    TrainOptions options;
    options.mart.num_trees = 150;
    return ResourceEstimator::Train(workload, options);
  }();
  const auto& eq = workload[3];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        est.EstimateQuery(eq.plan, *eq.database, Resource::kCpu));
  }
}
BENCHMARK(BM_EstimateWholeQuery);

void BM_ModelSerializedSizes(benchmark::State& state) {
  const Dataset data = MakeData(5000);
  MartParams params;
  params.num_trees = 1000;
  Mart mart(params);
  mart.Fit(data);
  size_t bytes = 0;
  for (auto _ : state) {
    bytes = mart.Serialize().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["model_KB"] =
      static_cast<double>(bytes) / 1024.0;
  state.counters["bytes_per_tree"] = static_cast<double>(bytes) / 1000.0;
}
BENCHMARK(BM_ModelSerializedSizes);

}  // namespace

BENCHMARK_MAIN();
