// Ablation study of the design choices DESIGN.md calls out:
//   SCALING          — the full technique
//   SCALING-nonorm   — without dependent-feature normalization (§6.1 (3))
//   SCALING-1f       — at most one scaling feature (no two-feature combos)
//   MART             — no scaling at all
// Evaluated in the paper's hardest same-schema setting: train on small
// databases (SF<=4), test on large (SF>=6).
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> small, large;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusBySf(std::move(corpus), 4.0, &small, &large, &dbs);

  const std::vector<std::string> variants = {"MART", "SCALING-1f",
                                             "SCALING-nonorm", "SCALING"};
  PrintScoreTable(
      "Ablation (CPU, exact features): train SF<=4, test SF>=6",
      EvaluateTechniques(variants, small, large, Resource::kCpu,
                         FeatureMode::kExact));
  PrintScoreTable(
      "Ablation (I/O, estimated features): train SF<=4, test SF>=6",
      EvaluateTechniques(variants, small, large, Resource::kIo,
                         FeatureMode::kEstimated));
  return 0;
}
