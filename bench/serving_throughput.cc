// Serving throughput: single-thread serial estimation loop vs. the batched
// EstimationService fanning the same requests across a worker pool — with
// and without the cross-request operator-estimate cache.
//
// The repeated-plan scenario models the paper's deployment inside a query
// optimizer: the same (operator, feature-vector) pairs recur across the
// candidate plans of one optimization session, so the version-keyed cache
// turns most operator inferences into lookups.
//
// Also verifies the serving contract end-to-end: batched results — cached
// or not — must be bit-identical to the serial ResourceEstimator output.
//
// Environment knobs:
//   RESEST_SERVING_THREADS   worker pool size          (default 8)
//   RESEST_SERVING_REQUESTS  requests per measurement  (default 2000)
//   RESEST_SERVING_PLANS     distinct plans in the repeated stream
//                            (default 25; lower = more cache hits)
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/experiment_common.h"
#include "bench/json_writer.h"
#include "src/common/thread_pool.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  double seconds = 0.0;
  size_t mismatches = 0;
};

Measurement MeasureBatch(const EstimationService& service,
                         const std::vector<EstimateRequest>& requests,
                         const std::vector<double>& serial) {
  service.EstimateBatch(requests);  // warm-up (threads running, pages hot)
  const auto start = std::chrono::steady_clock::now();
  const auto results = service.EstimateBatch(requests);
  Measurement m;
  m.seconds = SecondsSince(start);
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].ok() || results[i].value != serial[i]) ++m.mismatches;
  }
  return m;
}

void PrintRow(const char* label, double seconds, size_t n, double baseline) {
  std::printf("%-28s %10.3f %11.0f q/s %9.2fx\n", label, seconds,
              static_cast<double>(n) / seconds, baseline / seconds);
}

}  // namespace

int main() {
  const int num_threads = bench::EnvInt("RESEST_SERVING_THREADS", 8);
  const int num_requests = bench::EnvInt("RESEST_SERVING_REQUESTS", 2000);
  const int num_plans = bench::EnvInt("RESEST_SERVING_PLANS", 25);

  std::printf("== serving throughput: serial vs. %d-worker batched, "
              "cache off/on ==\n\n",
              num_threads);
  std::printf("hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  // Train once, serve many: the paper's deployment model.
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  Rng rng(7);
  const auto train =
      RunWorkload(db.get(), GenerateTpchWorkload(150, &rng, db.get()));
  TrainOptions options;
  options.train_threads = 0;  // all cores; identical output to serial
  const auto estimator = std::make_shared<const ResourceEstimator>(
      ResourceEstimator::Train(train, options));

  // Repeated-plan request stream: an optimization session revisits a small
  // set of plans, alternating resources, until we have num_requests.
  const size_t distinct =
      std::min<size_t>(train.size(), static_cast<size_t>(num_plans));
  std::vector<EstimateRequest> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const auto& eq = train[static_cast<size_t>(i) % distinct];
    requests.push_back({&eq.plan, eq.database,
                        i % 2 == 0 ? Resource::kCpu : Resource::kIo});
  }
  std::printf("request stream: %d requests over %zu distinct plans\n\n",
              num_requests, distinct);

  // --- Serial baseline: one thread, one request at a time. ---
  std::vector<double> serial(requests.size());
  // Untimed warm-up pass, mirroring the batched paths' warm-ups, so no
  // contender pays first-touch cache/page costs inside the measurement.
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const double serial_sec = SecondsSince(serial_start);

  // --- Batched service, cache disabled: pure fan-out. ---
  ModelRegistry registry;
  registry.Publish("default", estimator);
  ThreadPool pool(static_cast<size_t>(num_threads));
  ServiceOptions uncached_options;
  uncached_options.max_batch_size = requests.size();
  uncached_options.enable_cache = false;
  EstimationService uncached(&registry, &pool, uncached_options);
  const Measurement fanout = MeasureBatch(uncached, requests, serial);

  // --- Batched service, cache enabled (warmed by the warm-up batch). ---
  ServiceOptions cached_options;
  cached_options.max_batch_size = requests.size();
  EstimationService cached(&registry, &pool, cached_options);
  const Measurement memoized = MeasureBatch(cached, requests, serial);
  const ServiceStats stats = cached.stats();

  std::printf("%-28s %10s %15s %10s\n", "path", "time (s)", "throughput",
              "speedup");
  PrintRow("serial loop", serial_sec, requests.size(), serial_sec);
  PrintRow("batched, cache off", fanout.seconds, requests.size(), serial_sec);
  PrintRow("batched, cache on (warm)", memoized.seconds, requests.size(),
           serial_sec);

  std::printf("\ncache: %.1f%% hit rate (%llu hits / %llu misses), "
              "%zu entries, %llu evictions\n",
              100.0 * stats.CacheHitRate(),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              stats.cache_entries,
              static_cast<unsigned long long>(stats.cache_evictions));
  const size_t mismatches = fanout.mismatches + memoized.mismatches;
  std::printf("bit-identical to serial: %s (%zu/%zu mismatches)\n",
              mismatches == 0 ? "yes" : "NO", mismatches,
              2 * requests.size());
  if (memoized.seconds >= fanout.seconds) {
    std::printf("WARNING: cached batch was not faster than uncached\n");
  }

  const double dn = static_cast<double>(requests.size());
  bench::JsonWriter json;
  json.Str("bench", "serving_throughput");
  json.Int("threads", num_threads);
  json.Int("requests", num_requests);
  json.Int("distinct_plans", static_cast<long long>(distinct));
  json.Number("serial_qps", dn / serial_sec);
  json.Number("batched_uncached_qps", dn / fanout.seconds);
  json.Number("batched_cached_qps", dn / memoized.seconds);
  json.Number("cache_hit_rate", stats.CacheHitRate());
  json.Bool("bit_identical", mismatches == 0);
  json.WriteFile("BENCH_serving.json");

  return mismatches == 0 ? 0 : 1;
}
