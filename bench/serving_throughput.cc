// Serving throughput: single-thread serial estimation loop vs. the batched
// EstimationService fanning the same requests across a worker pool — with
// and without the cross-request operator-estimate cache — plus a
// latency-under-load scenario: the p99 of small urgent probes while bulk
// scan batches saturate the pool, with FIFO scheduling (probes share the
// bulk lane) vs. priority lanes (probes ride TaskPriority::kUrgent).
//
// The repeated-plan scenario models the paper's deployment inside a query
// optimizer: the same (operator, feature-vector) pairs recur across the
// candidate plans of one optimization session, so the version-keyed cache
// turns most operator inferences into lookups. The latency scenario models
// the admission-control deployment: per-query probes must not queue behind
// the optimizer's bulk re-optimization scans.
//
// Also verifies the serving contract end-to-end: batched results — cached
// or not, prioritized or not — must be bit-identical to the serial
// ResourceEstimator output.
//
// Environment knobs:
//   RESEST_SERVING_THREADS   worker pool size          (default 8)
//   RESEST_SERVING_REQUESTS  requests per measurement  (default 2000)
//   RESEST_SERVING_PLANS     distinct plans in the repeated stream
//                            (default 25; lower = more cache hits)
//   RESEST_SERVING_PROBES    urgent probes per latency scenario (default 80)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/experiment_common.h"
#include "bench/json_writer.h"
#include "src/common/thread_pool.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  double seconds = 0.0;
  size_t mismatches = 0;
};

Measurement MeasureBatch(const EstimationService& service,
                         const std::vector<EstimateRequest>& requests,
                         const std::vector<double>& serial) {
  service.EstimateBatch(requests);  // warm-up (threads running, pages hot)
  const auto start = std::chrono::steady_clock::now();
  const auto results = service.EstimateBatch(requests);
  Measurement m;
  m.seconds = SecondsSince(start);
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].ok() || results[i].value != serial[i]) ++m.mismatches;
  }
  return m;
}

void PrintRow(const char* label, double seconds, size_t n, double baseline) {
  std::printf("%-28s %10.3f %11.0f q/s %9.2fx\n", label, seconds,
              static_cast<double>(n) / seconds, baseline / seconds);
}

struct LatencySummary {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t mismatches = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

/// Urgent-probe latency while bulk scans keep the pool saturated. Probes
/// are submitted at `probe_priority`: kBulk puts them on the same lane as
/// the scans — FIFO, each probe waits for every scan request ahead of it —
/// while kUrgent lets the chunk scheduler serve them next.
LatencySummary MeasureProbeLatencyUnderBulk(
    const ModelRegistry& registry, ThreadPool& pool,
    const std::vector<EstimateRequest>& bulk_requests,
    const std::vector<EstimateRequest>& probe_requests,
    const std::vector<double>& probe_serial, TaskPriority probe_priority,
    int num_probes) {
  ServiceOptions options;
  // Uncached: a warm cache would turn the bulk scans into no-ops and
  // nothing would contend with the probes.
  options.enable_cache = false;
  options.max_batch_size = bulk_requests.size();
  EstimationService service(&registry, &pool, options);

  // Bulk load: a few blocking callers resubmitting the full scan until the
  // probes are done (blocking callers drain their own batches, so this also
  // keeps pool helpers busy without unbounded queue growth).
  std::atomic<bool> stop{false};
  SubmitOptions bulk;
  bulk.priority = TaskPriority::kBulk;
  std::vector<std::thread> bulk_callers;
  for (int t = 0; t < 2; ++t) {
    bulk_callers.emplace_back([&service, &bulk_requests, &bulk, &stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        service.EstimateBatch(bulk_requests, bulk);
      }
    });
  }
  // Let the bulk load reach a steady state before probing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  SubmitOptions probe_options;
  probe_options.priority = probe_priority;
  LatencySummary summary;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(num_probes));
  for (int i = 0; i < num_probes; ++i) {
    const size_t slot = static_cast<size_t>(i) % probe_requests.size();
    const auto start = std::chrono::steady_clock::now();
    const EstimateResult result =
        service.SubmitEstimate(probe_requests[slot], probe_options).get();
    latencies_ms.push_back(1000.0 * SecondsSince(start));
    if (!result.ok() || result.value != probe_serial[slot]) {
      ++summary.mismatches;
    }
  }
  stop.store(true);
  for (auto& caller : bulk_callers) caller.join();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  summary.p50_ms = Percentile(latencies_ms, 0.50);
  summary.p99_ms = Percentile(latencies_ms, 0.99);
  summary.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  return summary;
}

}  // namespace

int main() {
  const int num_threads = bench::EnvInt("RESEST_SERVING_THREADS", 8);
  const int num_requests = bench::EnvInt("RESEST_SERVING_REQUESTS", 2000);
  const int num_plans = bench::EnvInt("RESEST_SERVING_PLANS", 25);
  const int num_probes = bench::EnvInt("RESEST_SERVING_PROBES", 80);

  std::printf("== serving throughput: serial vs. %d-worker batched, "
              "cache off/on ==\n\n",
              num_threads);
  std::printf("hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  // Train once, serve many: the paper's deployment model.
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  Rng rng(7);
  const auto train =
      RunWorkload(db.get(), GenerateTpchWorkload(150, &rng, db.get()));
  TrainOptions options;
  options.train_threads = 0;  // all cores; identical output to serial
  const auto estimator = std::make_shared<const ResourceEstimator>(
      ResourceEstimator::Train(train, options));

  // Repeated-plan request stream: an optimization session revisits a small
  // set of plans, alternating resources, until we have num_requests.
  const size_t distinct =
      std::min<size_t>(train.size(), static_cast<size_t>(num_plans));
  std::vector<EstimateRequest> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const auto& eq = train[static_cast<size_t>(i) % distinct];
    requests.push_back({&eq.plan, eq.database,
                        i % 2 == 0 ? Resource::kCpu : Resource::kIo});
  }
  std::printf("request stream: %d requests over %zu distinct plans\n\n",
              num_requests, distinct);

  // --- Serial baseline: one thread, one request at a time. ---
  std::vector<double> serial(requests.size());
  // Untimed warm-up pass, mirroring the batched paths' warm-ups, so no
  // contender pays first-touch cache/page costs inside the measurement.
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const double serial_sec = SecondsSince(serial_start);

  // --- Batched service, cache disabled: pure fan-out. ---
  ModelRegistry registry;
  registry.Publish("default", estimator);
  ThreadPool pool(static_cast<size_t>(num_threads));
  ServiceOptions uncached_options;
  uncached_options.max_batch_size = requests.size();
  uncached_options.enable_cache = false;
  EstimationService uncached(&registry, &pool, uncached_options);
  const Measurement fanout = MeasureBatch(uncached, requests, serial);

  // --- Batched service, cache enabled (warmed by the warm-up batch). ---
  ServiceOptions cached_options;
  cached_options.max_batch_size = requests.size();
  EstimationService cached(&registry, &pool, cached_options);
  const Measurement memoized = MeasureBatch(cached, requests, serial);
  const ServiceStats stats = cached.stats();

  std::printf("%-28s %10s %15s %10s\n", "path", "time (s)", "throughput",
              "speedup");
  PrintRow("serial loop", serial_sec, requests.size(), serial_sec);
  PrintRow("batched, cache off", fanout.seconds, requests.size(), serial_sec);
  PrintRow("batched, cache on (warm)", memoized.seconds, requests.size(),
           serial_sec);

  std::printf("\ncache: %.1f%% hit rate (%llu hits / %llu misses), "
              "%zu entries, %llu evictions\n",
              100.0 * stats.CacheHitRate(),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              stats.cache_entries,
              static_cast<unsigned long long>(stats.cache_evictions));
  if (memoized.seconds >= fanout.seconds) {
    std::printf("WARNING: cached batch was not faster than uncached\n");
  }

  // --- Latency under load: urgent probes vs. background bulk scans. ---
  // One probe per distinct plan, always kCpu, with precomputed serial
  // values for the bit-identity check.
  std::vector<EstimateRequest> probe_requests;
  std::vector<double> probe_serial;
  for (size_t i = 0; i < distinct; ++i) {
    const auto& eq = train[i];
    probe_requests.push_back({&eq.plan, eq.database, Resource::kCpu});
    probe_serial.push_back(
        estimator->EstimateQuery(eq.plan, *eq.database, Resource::kCpu));
  }
  std::printf("\n-- latency under load: %d urgent probes over continuous "
              "%zu-request bulk scans --\n",
              num_probes, requests.size());
  const LatencySummary fifo = MeasureProbeLatencyUnderBulk(
      registry, pool, requests, probe_requests, probe_serial,
      TaskPriority::kBulk, num_probes);
  const LatencySummary prioritized = MeasureProbeLatencyUnderBulk(
      registry, pool, requests, probe_requests, probe_serial,
      TaskPriority::kUrgent, num_probes);
  std::printf("%-28s %10s %10s %10s\n", "probe scheduling", "p50 (ms)",
              "p99 (ms)", "max (ms)");
  std::printf("%-28s %10.3f %10.3f %10.3f\n", "FIFO (bulk lane)", fifo.p50_ms,
              fifo.p99_ms, fifo.max_ms);
  std::printf("%-28s %10.3f %10.3f %10.3f\n", "priority lanes (urgent)",
              prioritized.p50_ms, prioritized.p99_ms, prioritized.max_ms);
  if (prioritized.p99_ms > 0.0) {
    std::printf("urgent p99 improvement: %.1fx\n",
                fifo.p99_ms / prioritized.p99_ms);
  }
  if (prioritized.p99_ms >= fifo.p99_ms) {
    std::printf("WARNING: priority lanes did not improve urgent p99\n");
  }

  const size_t mismatches = fanout.mismatches + memoized.mismatches +
                            fifo.mismatches + prioritized.mismatches;
  const size_t checks =
      2 * requests.size() + 2 * static_cast<size_t>(num_probes);
  std::printf("\nbit-identical to serial: %s (%zu/%zu mismatches)\n",
              mismatches == 0 ? "yes" : "NO", mismatches, checks);

  const double dn = static_cast<double>(requests.size());
  bench::JsonWriter json;
  json.Str("bench", "serving_throughput");
  json.Int("threads", num_threads);
  json.Int("requests", num_requests);
  json.Int("distinct_plans", static_cast<long long>(distinct));
  json.Number("serial_qps", dn / serial_sec);
  json.Number("batched_uncached_qps", dn / fanout.seconds);
  json.Number("batched_cached_qps", dn / memoized.seconds);
  json.Number("cache_hit_rate", stats.CacheHitRate());
  json.Int("latency_probes", num_probes);
  json.Number("urgent_p50_ms_fifo", fifo.p50_ms);
  json.Number("urgent_p99_ms_fifo", fifo.p99_ms);
  json.Number("urgent_p50_ms_priority", prioritized.p50_ms);
  json.Number("urgent_p99_ms_priority", prioritized.p99_ms);
  json.Bool("urgent_p99_improved", prioritized.p99_ms < fifo.p99_ms);
  json.Bool("bit_identical", mismatches == 0);
  json.WriteFile("BENCH_serving.json");

  return mismatches == 0 ? 0 : 1;
}
