// Serving throughput: single-thread serial estimation loop vs. the batched
// EstimationService fanning the same requests across a worker pool.
//
// Also verifies the serving contract end-to-end: batched results must be
// bit-identical to the serial ResourceEstimator output.
//
// Environment knobs:
//   RESEST_SERVING_THREADS   worker pool size          (default 8)
//   RESEST_SERVING_REQUESTS  requests per measurement  (default 2000)
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/experiment_common.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/serving/thread_pool.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const int num_threads = bench::EnvInt("RESEST_SERVING_THREADS", 8);
  const int num_requests = bench::EnvInt("RESEST_SERVING_REQUESTS", 2000);

  std::printf("== serving throughput: serial loop vs. %d-worker batched ==\n\n",
              num_threads);
  std::printf("hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  // Train once, serve many: the paper's deployment model.
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  Rng rng(7);
  const auto train =
      RunWorkload(db.get(), GenerateTpchWorkload(150, &rng, db.get()));
  TrainOptions options;
  const auto estimator = std::make_shared<const ResourceEstimator>(
      ResourceEstimator::Train(train, options));

  // Request stream: cycle the executed plans until we have num_requests.
  std::vector<EstimateRequest> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const auto& eq = train[static_cast<size_t>(i) % train.size()];
    requests.push_back({&eq.plan, eq.database,
                        i % 2 == 0 ? Resource::kCpu : Resource::kIo});
  }

  // --- Serial baseline: one thread, one request at a time. ---
  std::vector<double> serial(requests.size());
  // Untimed warm-up pass, mirroring the batched path's warm-up below, so
  // neither side pays first-touch cache/page costs inside the measurement.
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const double serial_sec = SecondsSince(serial_start);

  // --- Batched service path. ---
  ModelRegistry registry;
  registry.Publish("default", estimator);
  ThreadPool pool(static_cast<size_t>(num_threads));
  ServiceOptions service_options;
  service_options.max_batch_size = requests.size();
  EstimationService service(&registry, &pool, service_options);

  service.EstimateBatch(requests);  // warm-up (threads running, pages hot)
  const auto batch_start = std::chrono::steady_clock::now();
  const auto results = service.EstimateBatch(requests);
  const double batch_sec = SecondsSince(batch_start);

  size_t mismatches = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].ok() || results[i].value != serial[i]) ++mismatches;
  }

  const double serial_qps = static_cast<double>(requests.size()) / serial_sec;
  const double batch_qps = static_cast<double>(requests.size()) / batch_sec;
  std::printf("%-24s %12s %14s\n", "path", "time (s)", "throughput");
  std::printf("%-24s %12.3f %11.0f q/s\n", "serial loop", serial_sec,
              serial_qps);
  std::printf("%-24s %12.3f %11.0f q/s\n", "batched (pooled)", batch_sec,
              batch_qps);
  std::printf("\nspeedup: %.2fx  (%d workers)\n", serial_sec / batch_sec,
              num_threads);
  std::printf("bit-identical to serial: %s (%zu/%zu mismatches)\n",
              mismatches == 0 ? "yes" : "NO", mismatches, requests.size());
  return mismatches == 0 ? 0 : 1;
}
