// Serving throughput: single-thread serial estimation loop vs. the batched
// EstimationService fanning the same requests across a worker pool — with
// and without the cross-request operator-estimate cache — plus a
// latency-under-load scenario: the p99 of small urgent probes while bulk
// scan batches saturate the pool, with FIFO scheduling (probes share the
// bulk lane) vs. priority lanes (probes ride TaskPriority::kUrgent).
//
// The repeated-plan scenario models the paper's deployment inside a query
// optimizer: the same (operator, feature-vector) pairs recur across the
// candidate plans of one optimization session, so the version-keyed cache
// turns most operator inferences into lookups. The latency scenario models
// the admission-control deployment: per-query probes must not queue behind
// the optimizer's bulk re-optimization scans.
//
// Also verifies the serving contract end-to-end: batched results — cached
// or not, prioritized or not — must be bit-identical to the serial
// ResourceEstimator output.
//
// A refit-under-load scenario rounds out the living-system story: while a
// background incremental refit retrains drifted model slots on the same
// pool (at TaskPriority::kBulk) and delta-publishes the result, the bench
// keeps bulk scans and urgent probes flowing and reports the throughput and
// urgent p99 the swap costs — every response still bit-identical to one of
// the two published versions.
//
// Environment knobs:
//   RESEST_SERVING_THREADS   worker pool size          (default 8)
//   RESEST_SERVING_REQUESTS  requests per measurement  (default 2000)
//   RESEST_SERVING_PLANS     distinct plans in the repeated stream
//                            (default 25; lower = more cache hits)
//   RESEST_SERVING_PROBES    urgent probes per latency scenario (default 80)
//   RESEST_SERVING_REFIT_QUERIES  feedback queries folded into the logs
//                                 before the refit scenario (default 60)
//   RESEST_SERVING_HTTP_BATCHES   operator batches per client per side of
//                                 the HTTP loopback scenario (default 100;
//                                 long enough that one scheduler hiccup
//                                 cannot flip the http/in-process ratio)
//   RESEST_SERVING_HTTP_CLIENTS   concurrent keep-alive clients in the
//                                 loopback scenario (default 8)
//
// A server-loopback scenario prices the HTTP front end (src/server/): the
// same operator-feature batches are estimated in-process and over a
// loopback resest_server round trip (JSON parse, coalesce, batch pipeline,
// JSON format, socket both ways) with N concurrent keep-alive clients on
// each side, reporting qps and p99 batch latency for both sides — and
// checking the wire's %.17g doubles land bit-identical.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/experiment_common.h"
#include "bench/json_writer.h"
#include "src/common/thread_pool.h"
#include "src/ml/compiled_forest.h"
#include "src/server/http_client.h"
#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/serving_frontend.h"
#include "src/server/wire_api.h"
#include "src/serving/batch_coalescer.h"
#include "src/serving/estimation_service.h"
#include "src/serving/model_registry.h"
#include "src/serving/tenant_manager.h"
#include "src/training/incremental_trainer.h"
#include "src/workload/runner.h"
#include "src/workload/schemas.h"
#include "src/workload/tpch_queries.h"

using namespace resest;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  double seconds = 0.0;
  size_t mismatches = 0;
};

Measurement MeasureBatch(const EstimationService& service,
                         const std::vector<EstimateRequest>& requests,
                         const std::vector<double>& serial) {
  service.EstimateBatch(requests);  // warm-up (threads running, pages hot)
  const auto start = std::chrono::steady_clock::now();
  const auto results = service.EstimateBatch(requests);
  Measurement m;
  m.seconds = SecondsSince(start);
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].ok() || results[i].value != serial[i]) ++m.mismatches;
  }
  return m;
}

void PrintRow(const char* label, double seconds, size_t n, double baseline) {
  std::printf("%-28s %10.3f %11.0f q/s %9.2fx\n", label, seconds,
              static_cast<double>(n) / seconds, baseline / seconds);
}

struct LatencySummary {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  size_t mismatches = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

/// Urgent-probe latency while bulk scans keep the pool saturated. Probes
/// are submitted at `probe_priority`: kBulk puts them on the same lane as
/// the scans — FIFO, each probe waits for every scan request ahead of it —
/// while kUrgent lets the chunk scheduler serve them next.
LatencySummary MeasureProbeLatencyUnderBulk(
    const ModelRegistry& registry, ThreadPool& pool,
    const std::vector<EstimateRequest>& bulk_requests,
    const std::vector<EstimateRequest>& probe_requests,
    const std::vector<double>& probe_serial, TaskPriority probe_priority,
    int num_probes) {
  ServiceOptions options;
  // Uncached: a warm cache would turn the bulk scans into no-ops and
  // nothing would contend with the probes.
  options.enable_cache = false;
  options.max_batch_size = bulk_requests.size();
  EstimationService service(&registry, &pool, options);

  // Bulk load: a few blocking callers resubmitting the full scan until the
  // probes are done (blocking callers drain their own batches, so this also
  // keeps pool helpers busy without unbounded queue growth).
  std::atomic<bool> stop{false};
  SubmitOptions bulk;
  bulk.priority = TaskPriority::kBulk;
  std::vector<std::thread> bulk_callers;
  for (int t = 0; t < 2; ++t) {
    bulk_callers.emplace_back([&service, &bulk_requests, &bulk, &stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        service.EstimateBatch(bulk_requests, bulk);
      }
    });
  }
  // Let the bulk load reach a steady state before probing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  SubmitOptions probe_options;
  probe_options.priority = probe_priority;
  // Warm the probe lane untimed: the first submissions on a lane pay
  // one-off costs (queue allocation, branch/cache warmup) that used to make
  // the measured p99 flap between runs.
  constexpr int kWarmupProbes = 16;
  for (int i = 0; i < kWarmupProbes; ++i) {
    const size_t slot = static_cast<size_t>(i) % probe_requests.size();
    (void)service.SubmitEstimate(probe_requests[slot], probe_options).get();
  }
  LatencySummary summary;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(num_probes));
  for (int i = 0; i < num_probes; ++i) {
    const size_t slot = static_cast<size_t>(i) % probe_requests.size();
    const auto start = std::chrono::steady_clock::now();
    const EstimateResult result =
        service.SubmitEstimate(probe_requests[slot], probe_options).get();
    latencies_ms.push_back(1000.0 * SecondsSince(start));
    if (!result.ok() || result.value != probe_serial[slot]) {
      ++summary.mismatches;
    }
  }
  stop.store(true);
  for (auto& caller : bulk_callers) caller.join();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  summary.p50_ms = Percentile(latencies_ms, 0.50);
  summary.p99_ms = Percentile(latencies_ms, 0.99);
  summary.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  return summary;
}

struct RefitScenario {
  double refit_seconds = 0.0;
  double bulk_qps = 0.0;        ///< Estimate throughput while refitting.
  LatencySummary probes;        ///< Urgent probe latency while refitting.
  size_t refitted_slots = 0;
  uint64_t base_version = 0;
  uint64_t delta_version = 0;
  size_t mismatches = 0;
  size_t probes_served = 0;
};

/// Estimate throughput and urgent p99 while a background refit retrains the
/// drifted slots at kBulk on the same pool and delta-publishes. Every probe
/// must be bit-identical to the published version that served it.
RefitScenario MeasureRefitUnderLoad(
    ModelRegistry& registry, ThreadPool& pool, IncrementalTrainer& trainer,
    const std::vector<ExecutedQuery>& feedback,
    const std::vector<EstimateRequest>& bulk_requests,
    const std::vector<EstimateRequest>& probe_requests,
    const std::vector<double>& probe_serial_v1) {
  RefitScenario scenario;
  scenario.base_version = trainer.base_version();

  ServiceOptions options;
  options.enable_cache = false;  // keep the load honest, as above
  options.max_batch_size = bulk_requests.size();
  EstimationService service(&registry, &pool, options);

  // The feedback stream crosses the refit policy for every operator it
  // touches — the refit ahead is a real multi-slot retrain, not a toy.
  trainer.ObserveAll(feedback);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bulk_served{0};
  SubmitOptions bulk;
  bulk.priority = TaskPriority::kBulk;
  std::vector<std::thread> bulk_callers;
  for (int t = 0; t < 2; ++t) {
    bulk_callers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        service.EstimateBatch(bulk_requests, bulk);
        bulk_served.fetch_add(bulk_requests.size(),
                              std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  IncrementalTrainer::RefitResult delta;
  std::atomic<bool> refit_done{false};
  const auto refit_start = std::chrono::steady_clock::now();
  const uint64_t bulk_at_start = bulk_served.load();
  std::thread refitter([&]() {
    delta = trainer.RefitAndPublish(&registry, "default", &service);
    refit_done.store(true, std::memory_order_release);
  });

  // Urgent probes for as long as the refit runs; versions recorded so each
  // response can be checked against the model that actually served it.
  struct Probe {
    size_t slot;
    uint64_t version;
    double value;
    bool ok;
  };
  std::vector<Probe> probes;
  std::vector<double> latencies_ms;
  SubmitOptions urgent;
  urgent.priority = TaskPriority::kUrgent;
  size_t i = 0;
  while (!refit_done.load(std::memory_order_acquire)) {
    const size_t slot = i++ % probe_requests.size();
    const auto start = std::chrono::steady_clock::now();
    const EstimateResult result =
        service.SubmitEstimate(probe_requests[slot], urgent).get();
    latencies_ms.push_back(1000.0 * SecondsSince(start));
    probes.push_back({slot, result.model_version, result.value, result.ok()});
  }
  refitter.join();
  scenario.refit_seconds = SecondsSince(refit_start);
  const uint64_t bulk_in_window = bulk_served.load() - bulk_at_start;
  stop.store(true);
  for (auto& caller : bulk_callers) caller.join();

  scenario.bulk_qps =
      static_cast<double>(bulk_in_window) / scenario.refit_seconds;
  scenario.probes_served = probes.size();
  scenario.refitted_slots = delta ? delta.refitted.size() : 0;
  scenario.delta_version = delta.version;

  // Bit-identity: each probe matches the serial answer of the version that
  // served it — v1 before the swap, the delta after.
  std::vector<double> probe_serial_v2(probe_requests.size(), 0.0);
  if (delta) {
    for (size_t p = 0; p < probe_requests.size(); ++p) {
      probe_serial_v2[p] = delta.estimator->EstimateQuery(
          *probe_requests[p].plan, *probe_requests[p].database,
          probe_requests[p].resource);
    }
  }
  for (const Probe& probe : probes) {
    const double expected = probe.version == scenario.base_version
                                ? probe_serial_v1[probe.slot]
                                : probe_serial_v2[probe.slot];
    if (!probe.ok || probe.value != expected) ++scenario.mismatches;
  }
  if (!delta) ++scenario.mismatches;  // the refit must actually publish

  std::sort(latencies_ms.begin(), latencies_ms.end());
  scenario.probes.p50_ms = Percentile(latencies_ms, 0.50);
  scenario.probes.p99_ms = Percentile(latencies_ms, 0.99);
  scenario.probes.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  return scenario;
}

struct LoopbackScenario {
  double inproc_qps = 0.0;
  double inproc_p99_ms = 0.0;
  double http_qps = 0.0;
  double http_p99_ms = 0.0;
  double coalesced_rows_per_batch = 0.0;
  uint64_t coalesced_batches = 0;
  size_t requests = 0;
  size_t checked_responses = 0;  ///< All passes, both sides.
  size_t mismatches = 0;
  bool ran = false;
};

/// The same operator-feature batches, in-process vs over loopback HTTP
/// through the event-loop front end with cross-request coalescing — N
/// concurrent clients on each side, every HTTP client reusing one
/// keep-alive connection. Equal concurrency on both sides makes the ratio
/// a pure wire-overhead number: JSON parse, coalesce/demux, response
/// format, and the socket crossings.
LoopbackScenario MeasureServerLoopback(const ModelRegistry& registry,
                                       ThreadPool& pool, int num_batches,
                                       int batch_size, int num_clients) {
  // Both sides run kPasses timed passes and keep the fastest: the two
  // sides are measured back to back on a timeshared host, so any single
  // pass can eat an unrelated scheduling hiccup and flip the ratio. The
  // bit-identity check still covers every response of every pass.
  constexpr int kPasses = 3;
  LoopbackScenario scenario;
  EstimationService service(&registry, &pool);
  ServingFrontend frontend(&service, &registry, "default");
  BatchCoalescer coalescer(&service, {});  // default window/max-rows
  frontend.set_coalescer(&coalescer);
  HttpServer server(
      [&frontend](const HttpRequest& r, HttpResponseSender respond) {
        frontend.HandleAsync(r, std::move(respond));
      });
  std::string error;
  if (!server.Start(&error)) {
    std::printf("WARNING: loopback server failed to start: %s\n",
                error.c_str());
    return scenario;
  }

  // Synthetic operator batches (the wire API ships features, not plans);
  // distinct per (client, batch) so nothing is one memoized batch replayed.
  const size_t nc = static_cast<size_t>(num_clients);
  std::vector<std::vector<std::vector<EstimateRequest>>> batches(nc);
  std::vector<std::vector<std::string>> bodies(nc);
  for (size_t c = 0; c < nc; ++c) {
    for (int b = 0; b < num_batches; ++b) {
      std::vector<EstimateRequest> requests;
      std::string body = "{\"requests\":[";
      for (int i = 0; i < batch_size; ++i) {
        const int salt =
            (static_cast<int>(c) * num_batches + b) * batch_size + i;
        FeatureVector features{};
        for (int f = 0; f < kNumFeatures; ++f) {
          features[static_cast<size_t>(f)] =
              1.0 + static_cast<double>(salt % 97) * 3.7 +
              static_cast<double>(f) * 0.91;
        }
        const OpType op = static_cast<OpType>(salt % kNumOpTypes);
        const Resource resource = i % 2 == 0 ? Resource::kCpu : Resource::kIo;
        requests.push_back(
            EstimateRequest::ForOperator(op, features, resource));
        if (i > 0) body += ',';
        body += "{\"op\":\"";
        body += OpTypeName(op);
        body += "\",\"resource\":\"";
        body += ResourceName(resource);
        body += "\",\"features\":[";
        for (int f = 0; f < kNumFeatures; ++f) {
          if (f > 0) body += ',';
          AppendJsonNumber(features[static_cast<size_t>(f)], &body);
        }
        body += "]}";
      }
      body += "]}";
      batches[c].push_back(std::move(requests));
      bodies[c].push_back(std::move(body));
    }
  }
  scenario.requests = nc * static_cast<size_t>(num_batches) *
                      static_cast<size_t>(batch_size);
  scenario.checked_responses = 2 * static_cast<size_t>(kPasses) *
                               scenario.requests;

  // Warm the cache so both timed sides serve the steady state, and record
  // the expected (serial-path) values for the bit-identity check.
  std::vector<std::vector<std::vector<EstimateResult>>> expected(nc);
  for (size_t c = 0; c < nc; ++c) {
    for (const auto& batch : batches[c]) {
      expected[c].push_back(service.EstimateBatch(batch));
    }
  }

  std::atomic<size_t> mismatches{0};

  // In-process side at the same concurrency: num_clients threads, each
  // submitting its own batch stream.
  std::vector<double> inproc_ms;
  for (int pass = 0; pass < kPasses; ++pass) {
    std::vector<std::vector<double>> ms_per(nc);
    std::vector<std::thread> workers;
    const auto inproc_start = std::chrono::steady_clock::now();
    for (size_t c = 0; c < nc; ++c) {
      workers.emplace_back([&, c]() {
        for (size_t b = 0; b < batches[c].size(); ++b) {
          const auto start = std::chrono::steady_clock::now();
          const auto results = service.EstimateBatch(batches[c][b]);
          ms_per[c].push_back(1000.0 * SecondsSince(start));
          for (size_t i = 0; i < results.size(); ++i) {
            if (!results[i].ok() ||
                results[i].value != expected[c][b][i].value) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const double inproc_sec = SecondsSince(inproc_start);
    const double qps = static_cast<double>(scenario.requests) / inproc_sec;
    if (qps > scenario.inproc_qps) {
      scenario.inproc_qps = qps;
      inproc_ms.clear();
      for (auto& v : ms_per) {
        inproc_ms.insert(inproc_ms.end(), v.begin(), v.end());
      }
    }
  }

  // HTTP side: each client thread connects once and keeps the connection
  // alive for its whole stream, so the server's keep-alive reuse and the
  // coalescer see the traffic shape of a real client fleet.
  const uint64_t coalesced_before = coalescer.stats().batches;
  std::vector<double> http_ms;
  for (int pass = 0; pass < kPasses; ++pass) {
    std::vector<std::vector<double>> ms_per(nc);
    // Response bodies are kept and verified *after* the timed window: the
    // verification tree-parse costs about as much as the server's own
    // request parse, and on a timeshared host running it inside the loop
    // would charge the client's checking work to the server's throughput.
    std::vector<std::vector<std::string>> responses(nc);
    std::vector<std::thread> workers;
    const auto http_start = std::chrono::steady_clock::now();
    for (size_t c = 0; c < nc; ++c) {
      responses[c].resize(bodies[c].size());
      workers.emplace_back([&, c]() {
        HttpClient client;
        std::string cerror;
        if (!client.Connect("127.0.0.1", server.port(), &cerror)) {
          mismatches.fetch_add(batches[c].size() *
                                   static_cast<size_t>(batch_size),
                               std::memory_order_relaxed);
          return;
        }
        for (size_t b = 0; b < bodies[c].size(); ++b) {
          const auto start = std::chrono::steady_clock::now();
          HttpClientResponse response;
          if (!client.Post("/v1/estimate", bodies[c][b], &response,
                           &cerror) ||
              response.status != 200) {
            mismatches.fetch_add(batches[c][b].size(),
                                 std::memory_order_relaxed);
            continue;
          }
          ms_per[c].push_back(1000.0 * SecondsSince(start));
          responses[c][b] = std::move(response.body);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double http_sec = SecondsSince(http_start);
    for (size_t c = 0; c < nc; ++c) {
      for (size_t b = 0; b < responses[c].size(); ++b) {
        if (responses[c][b].empty()) continue;  // already counted above
        JsonValue parsed;
        std::string json_error;
        const JsonValue* results =
            JsonValue::Parse(responses[c][b], &parsed, &json_error)
                ? parsed.Find("results")
                : nullptr;
        if (results == nullptr ||
            results->items().size() != batches[c][b].size()) {
          mismatches.fetch_add(batches[c][b].size(),
                               std::memory_order_relaxed);
          continue;
        }
        for (size_t i = 0; i < results->items().size(); ++i) {
          const JsonValue* value = results->items()[i].Find("value");
          const double got = value != nullptr ? value->as_number() : 0.0;
          if (std::memcmp(&got, &expected[c][b][i].value,
                          sizeof(double)) != 0) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    const double qps = static_cast<double>(scenario.requests) / http_sec;
    if (qps > scenario.http_qps) {
      scenario.http_qps = qps;
      http_ms.clear();
      for (auto& v : ms_per) {
        http_ms.insert(http_ms.end(), v.begin(), v.end());
      }
    }
  }
  server.Stop();

  const CoalescerStats cstats = coalescer.stats();
  scenario.coalesced_batches = cstats.batches - coalesced_before;
  scenario.coalesced_rows_per_batch = cstats.MeanRowsPerBatch();
  scenario.mismatches = mismatches.load();

  std::sort(inproc_ms.begin(), inproc_ms.end());
  std::sort(http_ms.begin(), http_ms.end());
  scenario.inproc_p99_ms = Percentile(inproc_ms, 0.99);
  scenario.http_p99_ms = Percentile(http_ms, 0.99);
  scenario.ran = true;
  return scenario;
}

struct TenantScenario {
  double solo_p99_ms = 0.0;   ///< Victim urgent p99, no load anywhere.
  double self_p99_ms = 0.0;   ///< ... while the victim floods itself.
  double cross_p99_ms = 0.0;  ///< ... while the *other* tenant floods.
  double isolation_ratio = 0.0;  ///< cross / max(solo, self).
  double solo_hit_rate = 0.0;
  double cross_hit_rate = 0.0;
  double bulk_tenant_qps = 0.0;    ///< Aggressor qps over the cross window.
  double victim_tenant_qps = 0.0;  ///< Victim qps over the same window.
  size_t probes = 0;
  size_t mismatches = 0;
};

/// Two tenants behind one TenantManager on the shared pool: "svc-b" serves
/// small urgent probes from a warm cache while "bulk-a" floods its own
/// cache region with distinct bulk scans. Isolation claim under test: the
/// aggressor's flood must not evict the victim's cache entries (disjoint
/// regions + disjoint slot-version key spaces), so the victim's urgent p99
/// under cross-tenant load stays within 2x of the worse of its no-load and
/// self-inflicted-load baselines. On a single-core host "within 2x of solo"
/// alone is unattainable — any concurrent load timeslices the probe thread —
/// which is why the self-loaded run (same CPU pressure, victim's own cache
/// flooded) is the fairness baseline; what the gate isolates is the *cache*
/// damage, visible as the cross-load hit rate staying near the solo one.
TenantScenario MeasureTenantIsolation(ModelRegistry& registry,
                                      ThreadPool& pool,
                                      const ResourceEstimator& estimator,
                                      int num_probes) {
  TenantScenario scenario;
  scenario.probes = static_cast<size_t>(3 * num_probes);

  TenantOptions topts;
  topts.service.model_name = "default";
  topts.service.cache_capacity = 4096;  // bulk flood (2x this) must evict
  topts.service.max_batch_size = 8192;
  topts.enable_coalescing = false;
  topts.heartbeat_interval_ms = 0;  // every Heartbeat() call ticks
  TenantManager tenants(&registry, &pool, topts);
  TenantManager::Tenant* bulk_tenant = tenants.AddTenant("bulk-a");
  TenantManager::Tenant* victim = tenants.AddTenant("svc-b");
  if (bulk_tenant == nullptr || victim == nullptr) {
    scenario.mismatches = scenario.probes;
    return scenario;
  }
  // Non-owning alias: the bench's estimator outlives the manager.
  tenants.PublishToAll(std::shared_ptr<const ResourceEstimator>(
      std::shared_ptr<void>(), &estimator));

  // Probe and flood sets over *trained* slots only (untrained slots
  // estimate to a constant and bypass the cache, so they would neither
  // occupy nor contest cache space).
  std::vector<std::pair<OpType, Resource>> slots;
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int r = 0; r < kNumResources; ++r) {
      if (estimator.ModelsFor(static_cast<OpType>(op),
                              static_cast<Resource>(r)) != nullptr) {
        slots.emplace_back(static_cast<OpType>(op), static_cast<Resource>(r));
      }
    }
  }
  if (slots.empty()) {
    scenario.mismatches = scenario.probes;
    return scenario;
  }
  const auto MakeRequest = [&slots](size_t i, double salt) {
    const auto& slot = slots[i % slots.size()];
    FeatureVector features{};
    for (int f = 0; f < kNumFeatures; ++f) {
      features[static_cast<size_t>(f)] =
          salt + static_cast<double>(i) * 1.31 + static_cast<double>(f) * 0.7;
    }
    return EstimateRequest::ForOperator(slot.first, features, slot.second);
  };
  std::vector<EstimateRequest> probe_requests;
  std::vector<double> probe_serial;
  for (size_t i = 0; i < 64; ++i) {
    probe_requests.push_back(MakeRequest(i, /*salt=*/1.0e6));
    probe_serial.push_back(estimator.EstimateFromFeatures(
        probe_requests.back().op, probe_requests.back().features,
        probe_requests.back().resource));
  }
  std::vector<EstimateRequest> flood_requests;  // 2x cache capacity
  for (size_t i = 0; i < 8192; ++i) {
    flood_requests.push_back(MakeRequest(i, /*salt=*/5.0e7));
  }

  // Warm the victim's cache with the probe working set, then warm the
  // urgent lane itself (first submissions pay one-off queue costs).
  SubmitOptions urgent;
  urgent.priority = TaskPriority::kUrgent;
  urgent.tenant = "svc-b";
  victim->service->EstimateBatch(probe_requests);
  for (int i = 0; i < 16; ++i) {
    const size_t slot = static_cast<size_t>(i) % probe_requests.size();
    (void)victim->service->SubmitEstimate(probe_requests[slot], urgent).get();
  }

  const auto RunProbePhase = [&](double* hit_rate) {
    const ServiceStats before = victim->service->stats();
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<size_t>(num_probes));
    for (int i = 0; i < num_probes; ++i) {
      const size_t slot = static_cast<size_t>(i) % probe_requests.size();
      const auto start = std::chrono::steady_clock::now();
      const EstimateResult result =
          victim->service->SubmitEstimate(probe_requests[slot], urgent).get();
      latencies_ms.push_back(1000.0 * SecondsSince(start));
      if (!result.ok() || result.value != probe_serial[slot]) {
        ++scenario.mismatches;
      }
    }
    if (hit_rate != nullptr) {
      const ServiceStats after = victim->service->stats();
      const uint64_t hits = after.cache_hits - before.cache_hits;
      const uint64_t misses = after.cache_misses - before.cache_misses;
      *hit_rate = hits + misses > 0
                      ? static_cast<double>(hits) /
                            static_cast<double>(hits + misses)
                      : 0.0;
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());
    return Percentile(latencies_ms, 0.99);
  };
  const auto RunLoadedPhase = [&](TenantManager::Tenant* flooder,
                                  double* hit_rate) {
    std::atomic<bool> stop{false};
    SubmitOptions bulk;
    bulk.priority = TaskPriority::kBulk;
    bulk.tenant = flooder->id;
    std::vector<std::thread> callers;
    for (int t = 0; t < 2; ++t) {
      callers.emplace_back([&]() {
        while (!stop.load(std::memory_order_relaxed)) {
          flooder->service->EstimateBatch(flood_requests, bulk);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double p99 = RunProbePhase(hit_rate);
    stop.store(true);
    for (auto& caller : callers) caller.join();
    return p99;
  };

  scenario.solo_p99_ms = RunProbePhase(&scenario.solo_hit_rate);
  scenario.self_p99_ms = RunLoadedPhase(victim, nullptr);
  // Re-warm: the self-flood evicted the victim's own probe entries — that
  // self-inflicted damage is exactly what the cross phase must NOT show.
  victim->service->EstimateBatch(probe_requests);
  tenants.Heartbeat();  // open the qps window for the cross phase
  scenario.cross_p99_ms = RunLoadedPhase(bulk_tenant, &scenario.cross_hit_rate);
  tenants.Heartbeat();  // close it
  for (const TenantStats& ts : tenants.stats()) {
    if (ts.tenant == "bulk-a") scenario.bulk_tenant_qps = ts.qps;
    if (ts.tenant == "svc-b") scenario.victim_tenant_qps = ts.qps;
  }
  const double baseline = std::max(scenario.solo_p99_ms, scenario.self_p99_ms);
  scenario.isolation_ratio =
      baseline > 0.0 ? scenario.cross_p99_ms / baseline : 0.0;
  return scenario;
}

}  // namespace

int main() {
  const int num_threads = bench::EnvInt("RESEST_SERVING_THREADS", 8);
  const int num_requests = bench::EnvInt("RESEST_SERVING_REQUESTS", 2000);
  const int num_plans = bench::EnvInt("RESEST_SERVING_PLANS", 25);
  const int num_probes = bench::EnvInt("RESEST_SERVING_PROBES", 80);
  const int num_refit_queries =
      bench::EnvInt("RESEST_SERVING_REFIT_QUERIES", 60);
  const int num_http_batches =
      bench::EnvInt("RESEST_SERVING_HTTP_BATCHES", 100);
  const int num_http_clients = bench::EnvInt("RESEST_SERVING_HTTP_CLIENTS", 8);

  std::printf("== serving throughput: serial vs. %d-worker batched, "
              "cache off/on ==\n\n",
              num_threads);
  std::printf("hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  // Train once, serve many: the paper's deployment model. Training runs
  // through the incremental trainer (per-slot fits on the pool at kBulk,
  // byte-identical to ResourceEstimator::Train) so the refit-under-load
  // scenario below can fold feedback into the same observation logs.
  auto db = GenerateDatabase(TpchSchema(), 1.0, 1.5, 42);
  Rng rng(7);
  const auto train =
      RunWorkload(db.get(), GenerateTpchWorkload(150, &rng, db.get()));
  ThreadPool pool(static_cast<size_t>(num_threads));
  TrainOptions options;
  RefitPolicy policy;
  policy.min_new_rows = 1;  // any feedback refits its slot: a meaty retrain
  IncrementalTrainer trainer(options, policy, &pool);
  const auto estimator = trainer.SeedAndTrain(train);

  // Repeated-plan request stream: an optimization session revisits a small
  // set of plans, alternating resources, until we have num_requests.
  const size_t distinct =
      std::min<size_t>(train.size(), static_cast<size_t>(num_plans));
  std::vector<EstimateRequest> requests;
  requests.reserve(static_cast<size_t>(num_requests));
  for (int i = 0; i < num_requests; ++i) {
    const auto& eq = train[static_cast<size_t>(i) % distinct];
    requests.push_back({&eq.plan, eq.database,
                        i % 2 == 0 ? Resource::kCpu : Resource::kIo});
  }
  std::printf("request stream: %d requests over %zu distinct plans\n",
              num_requests, distinct);
  std::printf("compiled-forest kernel: %s (lockstep width %zu)\n\n",
              CompiledForest::ActiveKernelName(),
              CompiledForest::ActiveLockstepWidth());

  // --- Serial baseline: one thread, one request at a time. ---
  std::vector<double> serial(requests.size());
  // Untimed warm-up pass, mirroring the batched paths' warm-ups, so no
  // contender pays first-touch cache/page costs inside the measurement.
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); ++i) {
    serial[i] = estimator->EstimateQuery(*requests[i].plan,
                                         *requests[i].database,
                                         requests[i].resource);
  }
  const double serial_sec = SecondsSince(serial_start);

  // --- Batched service, cache disabled: pure fan-out. ---
  ModelRegistry registry;
  trainer.PublishBaseline(&registry, "default");
  ServiceOptions uncached_options;
  uncached_options.max_batch_size = requests.size();
  uncached_options.enable_cache = false;
  EstimationService uncached(&registry, &pool, uncached_options);
  const Measurement fanout = MeasureBatch(uncached, requests, serial);

  // --- Batched service, cache enabled (warmed by the warm-up batch). ---
  ServiceOptions cached_options;
  cached_options.max_batch_size = requests.size();
  EstimationService cached(&registry, &pool, cached_options);
  const Measurement memoized = MeasureBatch(cached, requests, serial);
  const ServiceStats stats = cached.stats();

  std::printf("%-28s %10s %15s %10s\n", "path", "time (s)", "throughput",
              "speedup");
  PrintRow("serial loop", serial_sec, requests.size(), serial_sec);
  PrintRow("batched, cache off", fanout.seconds, requests.size(), serial_sec);
  PrintRow("batched, cache on (warm)", memoized.seconds, requests.size(),
           serial_sec);

  std::printf("\ncache: %.1f%% hit rate (%llu hits / %llu misses), "
              "%zu entries, %llu evictions\n",
              100.0 * stats.CacheHitRate(),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              stats.cache_entries,
              static_cast<unsigned long long>(stats.cache_evictions));
  if (memoized.seconds >= fanout.seconds) {
    std::printf("WARNING: cached batch was not faster than uncached\n");
  }

  // --- Latency under load: urgent probes vs. background bulk scans. ---
  // One probe per distinct plan, always kCpu, with precomputed serial
  // values for the bit-identity check.
  std::vector<EstimateRequest> probe_requests;
  std::vector<double> probe_serial;
  for (size_t i = 0; i < distinct; ++i) {
    const auto& eq = train[i];
    probe_requests.push_back({&eq.plan, eq.database, Resource::kCpu});
    probe_serial.push_back(
        estimator->EstimateQuery(eq.plan, *eq.database, Resource::kCpu));
  }
  std::printf("\n-- latency under load: %d urgent probes over continuous "
              "%zu-request bulk scans --\n",
              num_probes, requests.size());
  const LatencySummary fifo = MeasureProbeLatencyUnderBulk(
      registry, pool, requests, probe_requests, probe_serial,
      TaskPriority::kBulk, num_probes);
  const LatencySummary prioritized = MeasureProbeLatencyUnderBulk(
      registry, pool, requests, probe_requests, probe_serial,
      TaskPriority::kUrgent, num_probes);
  std::printf("%-28s %10s %10s %10s\n", "probe scheduling", "p50 (ms)",
              "p99 (ms)", "max (ms)");
  std::printf("%-28s %10.3f %10.3f %10.3f\n", "FIFO (bulk lane)", fifo.p50_ms,
              fifo.p99_ms, fifo.max_ms);
  std::printf("%-28s %10.3f %10.3f %10.3f\n", "priority lanes (urgent)",
              prioritized.p50_ms, prioritized.p99_ms, prioritized.max_ms);
  if (prioritized.p99_ms > 0.0) {
    std::printf("urgent p99 improvement: %.1fx\n",
                fifo.p99_ms / prioritized.p99_ms);
  }
  if (prioritized.p99_ms >= fifo.p99_ms) {
    std::printf("WARNING: priority lanes did not improve urgent p99\n");
  }

  // --- Refit under load: background incremental retrain + delta publish
  // while bulk scans and urgent probes keep flowing. ---
  Rng feedback_rng(99);
  const auto feedback = RunWorkload(
      db.get(),
      GenerateTpchWorkload(num_refit_queries, &feedback_rng, db.get()), 23);
  std::printf("\n-- refit under load: %zu feedback queries folded in, "
              "refit + delta publish racing bulk scans and urgent probes --\n",
              feedback.size());
  const RefitScenario refit = MeasureRefitUnderLoad(
      registry, pool, trainer, feedback, requests, probe_requests,
      probe_serial);
  std::printf("refit: %zu slots retrained in %.3f s (v%llu -> v%llu)\n",
              refit.refitted_slots, refit.refit_seconds,
              static_cast<unsigned long long>(refit.base_version),
              static_cast<unsigned long long>(refit.delta_version));
  std::printf("during refit: %11.0f q/s bulk estimate throughput, "
              "%zu urgent probes p50 %.3f ms  p99 %.3f ms  max %.3f ms\n",
              refit.bulk_qps, refit.probes_served, refit.probes.p50_ms,
              refit.probes.p99_ms, refit.probes.max_ms);
  if (refit.mismatches != 0) {
    std::printf("WARNING: %zu refit-scenario responses matched neither "
                "published version\n",
                refit.mismatches);
  }

  // --- Bounded observation logs: sustained ingestion under a hard memory
  // cap. The footprint must stay at or under the cap no matter how much
  // traffic flows, and a capped refit must stay deterministic (two trainers
  // fed the same stream refit to byte-identical models). ---
  LogBounds capped_bounds;
  capped_bounds.window_rows = 2048;
  capped_bounds.reservoir_rows = 256;
  capped_bounds.memory_cap_bytes = 2u << 20;  // 2 MiB across all slots
  RefitPolicy capped_policy;
  capped_policy.min_new_rows = 1;
  IncrementalTrainer capped(options, capped_policy, &pool, capped_bounds);
  IncrementalTrainer capped_twin(options, capped_policy, &pool, capped_bounds);
  {
    std::vector<ExecutedQuery> empty;
    capped.SeedAndTrain(empty);
    capped_twin.SeedAndTrain(empty);
  }
  // Keep observing the training stream until enough rows flowed that an
  // unbounded log would have blown well past the cap (3x), bounded by a
  // pass limit for tiny workloads.
  const auto IngestedRows = [](const IncrementalTrainer& t) {
    uint64_t rows = 0;
    for (int op = 0; op < kNumOpTypes; ++op) {
      for (int r = 0; r < kNumResources; ++r) {
        rows += t.LogStats(static_cast<OpType>(op), static_cast<Resource>(r))
                    .rows;
      }
    }
    return rows;
  };
  int ingest_passes = 0;
  while (ingest_passes < 256 &&
         IngestedRows(capped) * kObservationRowBytes <
             3 * capped_bounds.memory_cap_bytes) {
    capped.ObserveAll(train);
    capped_twin.ObserveAll(train);
    ++ingest_passes;
  }
  const uint64_t ingested_rows = IngestedRows(capped);
  const DurabilityStats obslog = capped.durability_stats();
  const auto capped_refit = capped.RefitAll();
  const auto twin_refit = capped_twin.RefitAll();
  const bool capped_deterministic =
      capped_refit && twin_refit &&
      capped_refit.estimator->Serialize() == twin_refit.estimator->Serialize();
  // A single append may transiently overshoot by one row before the cap
  // enforcement evicts — anything beyond that is a real leak.
  const bool memory_bounded =
      obslog.memory_bytes <= capped_bounds.memory_cap_bytes &&
      obslog.memory_peak_bytes <=
          capped_bounds.memory_cap_bytes + kObservationRowBytes;
  std::printf("\n-- bounded observation logs: %llu rows ingested over %d "
              "passes under a %zu KiB cap --\n",
              static_cast<unsigned long long>(ingested_rows), ingest_passes,
              capped_bounds.memory_cap_bytes >> 10);
  std::printf("footprint: %zu KiB live, %zu KiB peak, %llu rows spilled to "
              "reservoirs\n",
              obslog.memory_bytes >> 10, obslog.memory_peak_bytes >> 10,
              static_cast<unsigned long long>(obslog.spilled_rows));
  std::printf("capped refit deterministic across identical streams: %s\n",
              capped_deterministic ? "yes" : "NO");
  if (!memory_bounded) {
    std::printf("WARNING: observation-log footprint exceeded the cap\n");
  }

  // --- Server loopback: the same batches in-process vs over HTTP at equal
  // concurrency, so the wire overhead of the serving front end is a
  // measured number. ---
  std::printf("\n-- server loopback: %d keep-alive clients x %d batches of "
              "64 operator estimates, in-process vs HTTP round trip --\n",
              num_http_clients, num_http_batches);
  const LoopbackScenario loopback =
      MeasureServerLoopback(registry, pool, num_http_batches,
                            /*batch_size=*/64, num_http_clients);
  if (loopback.ran) {
    std::printf("%-28s %11.0f q/s  p99 %.3f ms/batch\n", "in-process",
                loopback.inproc_qps, loopback.inproc_p99_ms);
    std::printf("%-28s %11.0f q/s  p99 %.3f ms/batch\n", "HTTP loopback",
                loopback.http_qps, loopback.http_p99_ms);
    std::printf("HTTP vs in-process throughput ratio: %.3f\n",
                loopback.inproc_qps > 0.0
                    ? loopback.http_qps / loopback.inproc_qps
                    : 0.0);
    std::printf("coalescer: %llu merged submissions, %.1f rows/batch mean\n",
                static_cast<unsigned long long>(loopback.coalesced_batches),
                loopback.coalesced_rows_per_batch);
    if (loopback.mismatches != 0) {
      std::printf("WARNING: %zu HTTP responses were not bit-identical to "
                  "the in-process results\n",
                  loopback.mismatches);
    }
  }

  // --- Tenant isolation: victim urgent probes vs a cross-tenant bulk
  // flood, through the TenantManager's per-tenant cache regions. ---
  std::printf("\n-- tenant isolation: svc-b urgent probes (solo / "
              "self-loaded / cross-loaded by bulk-a's 8192-row floods) --\n");
  const TenantScenario tenant_iso =
      MeasureTenantIsolation(registry, pool, *estimator, num_probes);
  std::printf("%-28s %10s %10s\n", "victim probe phase", "p99 (ms)",
              "hit rate");
  std::printf("%-28s %10.3f %9.1f%%\n", "solo (no load)",
              tenant_iso.solo_p99_ms, 100.0 * tenant_iso.solo_hit_rate);
  std::printf("%-28s %10.3f %10s\n", "self-loaded (own flood)",
              tenant_iso.self_p99_ms, "-");
  std::printf("%-28s %10.3f %9.1f%%\n", "cross-loaded (bulk-a flood)",
              tenant_iso.cross_p99_ms, 100.0 * tenant_iso.cross_hit_rate);
  std::printf("cross-load p99 vs max(solo, self): %.3fx\n",
              tenant_iso.isolation_ratio);
  std::printf("per-tenant qps over the cross window: bulk-a %.0f, "
              "svc-b %.0f\n",
              tenant_iso.bulk_tenant_qps, tenant_iso.victim_tenant_qps);
  if (tenant_iso.cross_hit_rate < tenant_iso.solo_hit_rate * 0.5) {
    std::printf("WARNING: cross-tenant load degraded the victim's cache "
                "hit rate\n");
  }

  const size_t mismatches = fanout.mismatches + memoized.mismatches +
                            fifo.mismatches + prioritized.mismatches +
                            refit.mismatches + loopback.mismatches +
                            tenant_iso.mismatches;
  const size_t checks = 2 * requests.size() +
                        2 * static_cast<size_t>(num_probes) +
                        refit.probes_served + loopback.checked_responses +
                        tenant_iso.probes;
  std::printf("\nbit-identical to serial: %s (%zu/%zu mismatches)\n",
              mismatches == 0 ? "yes" : "NO", mismatches, checks);

  const double dn = static_cast<double>(requests.size());
  bench::JsonWriter json;
  json.Str("bench", "serving_throughput");
  json.Int("threads", num_threads);
  json.Int("requests", num_requests);
  json.Int("distinct_plans", static_cast<long long>(distinct));
  json.Number("serial_qps", dn / serial_sec);
  json.Number("batched_uncached_qps", dn / fanout.seconds);
  json.Number("batched_cached_qps", dn / memoized.seconds);
  json.Number("batched_uncached_speedup", serial_sec / fanout.seconds);
  // Inference-path configuration behind the numbers above: which compiled-
  // forest kernel ran (avx2 / scalar / scalar-exact), its lockstep width,
  // and the chunk size the adaptive policy picked for this batch shape —
  // so a regression in the JSON can be attributed to a dispatch or sizing
  // change, not just "got slower".
  json.Str("simd_kernel", CompiledForest::ActiveKernelName());
  json.Int("lockstep_width",
           static_cast<long long>(CompiledForest::ActiveLockstepWidth()));
  json.Int("chunk_size_effective",
           static_cast<long long>(uncached.EffectiveChunkSize(
               requests.size(), TaskPriority::kNormal)));
  json.Number("cache_hit_rate", stats.CacheHitRate());
  json.Int("latency_probes", num_probes);
  json.Number("urgent_p50_ms_fifo", fifo.p50_ms);
  json.Number("urgent_p99_ms_fifo", fifo.p99_ms);
  json.Number("urgent_p50_ms_priority", prioritized.p50_ms);
  json.Number("urgent_p99_ms_priority", prioritized.p99_ms);
  // Ratio (FIFO p99 / priority-lane p99), not a boolean: CI gates on a
  // threshold with margin instead of flapping when the two are close.
  json.Number("urgent_p99_ratio",
              prioritized.p99_ms > 0.0 ? fifo.p99_ms / prioritized.p99_ms
                                       : 0.0);
  json.Int("refit_feedback_queries", static_cast<long long>(feedback.size()));
  json.Int("refit_slots", static_cast<long long>(refit.refitted_slots));
  json.Number("refit_seconds", refit.refit_seconds);
  json.Number("refit_bulk_qps", refit.bulk_qps);
  json.Int("refit_probes", static_cast<long long>(refit.probes_served));
  json.Number("refit_urgent_p50_ms", refit.probes.p50_ms);
  json.Number("refit_urgent_p99_ms", refit.probes.p99_ms);
  json.Int("obslog_ingested_rows", static_cast<long long>(ingested_rows));
  json.Int("obslog_bytes", static_cast<long long>(obslog.memory_bytes));
  json.Int("obslog_peak_bytes",
           static_cast<long long>(obslog.memory_peak_bytes));
  json.Int("obslog_cap_bytes",
           static_cast<long long>(capped_bounds.memory_cap_bytes));
  json.Int("obslog_spilled_rows",
           static_cast<long long>(obslog.spilled_rows));
  json.Bool("obslog_memory_bounded", memory_bounded);
  json.Bool("obslog_refit_deterministic", capped_deterministic);
  json.Int("http_batches", num_http_batches);
  json.Int("http_clients", num_http_clients);
  json.Number("server_inprocess_qps", loopback.inproc_qps);
  json.Number("server_inprocess_p99_ms", loopback.inproc_p99_ms);
  json.Number("server_http_qps", loopback.http_qps);
  json.Number("server_http_p99_ms", loopback.http_p99_ms);
  json.Number("server_http_vs_inprocess_ratio",
              loopback.inproc_qps > 0.0
                  ? loopback.http_qps / loopback.inproc_qps
                  : 0.0);
  json.Number("coalesced_rows_per_batch", loopback.coalesced_rows_per_batch);
  json.Int("coalesced_batches",
           static_cast<long long>(loopback.coalesced_batches));
  json.Number("tenant_solo_urgent_p99_ms", tenant_iso.solo_p99_ms);
  json.Number("tenant_self_urgent_p99_ms", tenant_iso.self_p99_ms);
  json.Number("tenant_cross_urgent_p99_ms", tenant_iso.cross_p99_ms);
  // Cross-tenant p99 over the worse of the no-load and self-loaded runs;
  // CI gates this <= 2.0 (see docs/multi_tenant.md for why solo alone is
  // not a fair baseline on a small host).
  json.Number("tenant_isolation_ratio", tenant_iso.isolation_ratio);
  json.Number("tenant_solo_hit_rate", tenant_iso.solo_hit_rate);
  json.Number("tenant_cross_hit_rate", tenant_iso.cross_hit_rate);
  json.Number("tenant_bulk_qps", tenant_iso.bulk_tenant_qps);
  json.Number("tenant_victim_qps", tenant_iso.victim_tenant_qps);
  json.Bool("bit_identical", mismatches == 0);
  json.WriteFile("BENCH_serving.json");

  return mismatches == 0 && memory_bounded && capped_deterministic ? 0 : 1;
}
