// Table 11: training on TPC-H, testing on different data sizes — logical
// I/O operations, optimizer-estimated features.
#include "bench/experiment_common.h"

using namespace resest;
using namespace resest::bench;

int main() {
  Corpus corpus = BuildTpchCorpus(TotalTpchQueries(), /*skew=*/2.0, 42);
  std::vector<ExecutedQuery> small, large;
  std::vector<std::unique_ptr<Database>> dbs;
  SplitCorpusBySf(std::move(corpus), 4.0, &small, &large, &dbs);

  const std::vector<std::string> techniques = {"[8]", "LINEAR", "SVM(RBF)",
                                               "SCALING"};
  PrintScoreTable(
      "Table 11a: Train small (SF<=4), Test Large (SF>=6) (I/O operations)",
      EvaluateTechniques(techniques, small, large, Resource::kIo,
                         FeatureMode::kEstimated));
  PrintScoreTable(
      "Table 11b: Train large (SF>=6), Test Small (SF<=4) (I/O operations)",
      EvaluateTechniques(techniques, large, small, Resource::kIo,
                         FeatureMode::kEstimated));
  return 0;
}
